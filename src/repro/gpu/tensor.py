"""Trial-batched tensor execution: N fault trials as one wide warp.

The scalar executor (:mod:`repro.gpu.warp` / :mod:`repro.gpu.device`)
runs one fault trial per kernel launch, which leaves campaign throughput
dominated by per-instruction Python overhead.  This module amortizes
that overhead across a whole *batch* of independent trials: a
:class:`TrialWarp` stacks the 32-lane state of ``trials`` runs into one
``(trials * 32,)``-wide virtual warp that decodes each instruction once
and executes it for every trial with a single numpy operation.

The design invariant is **exact per-trial equivalence with the scalar
oracle**: restricting a batched run to one trial's 32 lanes must
reproduce that trial's scalar execution step for step — same register
values, same memory image, same detection events, same outcome bin.
The pieces that make that hold:

* **Shared instruction stream, stacked masks.**  All trials share one
  pc and one SIMT reconvergence stack whose masks are
  ``(trials * 32,)`` boolean vectors; divergence pushes entries whose
  masks carry the union of every trial's lanes on that path, and a
  trial simply has no active lanes in steps its scalar run would not
  execute.  Instruction semantics inherit unchanged from
  :class:`~repro.gpu.warp.Warp` — they are already width-agnostic.
* **Per-trial memory.**  :class:`TrialMemory` tiles the launch image
  ``trials`` times in one flat uint32 array and offsets every lane's
  address by its trial's base, so stores never leak across trials and
  out-of-bounds accesses crash only the offending trial.
* **Per-trial fault state.**  Each trial carries its own
  :class:`~repro.gpu.resilience.ResilienceState` (and fault plan);
  strikes route through the same
  :func:`~repro.gpu.warp.apply_fault_strike` the scalar path uses, on
  the firing trial's 32-lane slice.
* **Per-trial termination.**  A detected DUE/trap, a hang (per-trial
  step budget), or a crash (out-of-bounds access, running off the end)
  removes exactly that trial's lanes from the batch, launch-wide, while
  every other trial continues.  Mid-instruction halts suppress the
  halted trial's remaining writes, mirroring how a scalar
  :class:`~repro.gpu.warp.KernelHalt` aborts before them.
* **Scalar fallback flagging.**  The one construct a shared stack
  cannot replay per trial is a barrier some trials reach while others
  are elsewhere (cross-trial divergent ``BAR`` arrival).  Such trials —
  and all live trials of a batch that deadlocks or dies at union level
  — are flagged ``"fallback"`` instead of guessed at; the injection
  engine reruns them through the scalar oracle, so the batch result is
  exact in every case and merely slower in the degenerate ones.

Dtype/shape contracts: register state is ``(registers, trials * 32)``
uint32, predicates ``(8, trials * 32)`` bool, per-trial counters are
``(trials,)`` int64, and every mask handed to an execution method is a
``(trials * 32,)`` bool whose trial ``t`` occupies flat lanes
``[32 * t, 32 * (t + 1))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.ecc.vectorized import READ_CORRECTED, READ_DUE
from repro.errors import SimulationError
from repro.gpu.isa import PT, WARP_SIZE, Instruction, OperandKind
from repro.gpu.memory import MemorySpace
from repro.gpu.program import Kernel, LaunchConfig
from repro.gpu.resilience import ResilienceState, TaintTracker
from repro.gpu.warp import (DATAPATH_PIPES, StackEntry, Warp,
                            apply_fault_strike)

#: outcome labels a batched trial can finish with
TRIAL_OK = "ok"            #: ran to completion (state may hold events)
TRIAL_HALT = "halt"        #: detection halted the launch (DUE or trap)
TRIAL_HANG = "hang"        #: exceeded its per-trial step budget
TRIAL_CRASH = "crash"      #: out-of-bounds access or ran off the end
TRIAL_FALLBACK = "fallback"  #: needs a scalar rerun for exactness


class TrialMemory:
    """``trials`` private copies of one memory image in a flat array.

    Lane ``l`` of the batched warp addresses words of trial ``l // 32``
    only: every gather/scatter/atomic offsets the lane's word address by
    ``(l // 32) * words_per_trial``.  Addresses are per-trial word
    indices (uint32), exactly as the scalar
    :class:`~repro.gpu.memory.MemorySpace` sees them.

    Bounds are *not* checked here — callers run :meth:`oob_trials`
    first and crash the offending trials, so by the time an access
    lands every masked lane is in range.
    """

    def __init__(self, image: np.ndarray, trials: int,
                 name: str = "global"):
        image = np.asarray(image, dtype=np.uint32)
        if image.size == 0:
            raise SimulationError(f"{name}: empty memory image")
        self.name = name
        self.trials = trials
        self.words_per_trial = len(image)
        self.words = np.tile(image, trials)
        self._offsets = np.repeat(
            np.arange(trials, dtype=np.int64) * self.words_per_trial,
            WARP_SIZE)

    def oob_trials(self, parts: Sequence[np.ndarray],
                   mask: np.ndarray) -> np.ndarray:
        """Trial indices with any masked address outside the trial image.

        ``parts`` are the per-lane address vectors of each 32-bit part
        of the access (one for narrow, two for wide); the scalar oracle
        raises :class:`~repro.errors.SimulationError` for these, so the
        batched executor bins the trials as crashed.
        """
        bad = np.zeros(self.trials, dtype=bool)
        for part in parts:
            lane_bad = mask & (part >= self.words_per_trial)
            if lane_bad.any():
                bad |= lane_bad.reshape(self.trials, WARP_SIZE).any(axis=1)
        return np.nonzero(bad)[0]

    def gather(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Masked per-lane load (trial-offset); inactive lanes read zero."""
        result = np.zeros(len(addresses), dtype=np.uint32)
        if mask.any():
            flat = addresses.astype(np.int64) + self._offsets
            result[mask] = self.words[flat[mask]]
        return result

    def scatter(self, addresses: np.ndarray, values: np.ndarray,
                mask: np.ndarray) -> None:
        """Masked per-lane store; lane order resolves write conflicts."""
        if mask.any():
            flat = addresses.astype(np.int64) + self._offsets
            self.words[flat[mask]] = values[mask]

    def atomic(self, op: str, addresses: np.ndarray, values: np.ndarray,
               mask: np.ndarray) -> np.ndarray:
        """Per-lane read-modify-write in flat lane order; returns olds.

        Flat lane order is trial-major with lanes ascending inside each
        trial, so each trial's restriction serializes exactly like the
        scalar :meth:`~repro.gpu.memory.MemorySpace.atomic` while
        different trials touch disjoint words.
        """
        result = np.zeros(len(addresses), dtype=np.uint32)
        flat = addresses.astype(np.int64) + self._offsets
        for lane in np.nonzero(mask)[0]:
            address = int(flat[lane])
            old = int(self.words[address])
            value = int(values[lane])
            if op == "ADD":
                new = (old + value) & 0xFFFF_FFFF
            elif op == "MAX":
                new = max(old, value)
            elif op == "MIN":
                new = min(old, value)
            elif op == "EXCH":
                new = value
            else:
                raise SimulationError(f"unknown atomic op {op!r}")
            self.words[address] = new
            result[lane] = old
        return result

    def image_of(self, trial: int) -> np.ndarray:
        """Trial ``trial``'s final memory image, as a fresh uint32 copy."""
        base = trial * self.words_per_trial
        return self.words[base:base + self.words_per_trial].copy()

    def space_of(self, trial: int) -> MemorySpace:
        """Trial ``trial``'s image wrapped as a scalar MemorySpace.

        This is what workload ``verify`` callbacks consume — they only
        ever see one trial's words, shaped exactly like a scalar run's
        global memory.
        """
        space = MemorySpace(self.words_per_trial, name=self.name)
        space.words[:] = self.image_of(trial)
        return space


class TrialBatch:
    """Liveness, outcomes, and step budgets of one batch of trials.

    One instance spans the whole launch (all CTAs): per-trial step
    counters accumulate across CTAs exactly as the scalar watchdog's
    global budget does, and a terminated trial stays terminated in every
    later CTA.  ``lanes_live`` is the ``(trials * 32,)`` expansion of
    the ``(trials,)`` ``live`` flags that execution masks AND against.
    """

    def __init__(self, trials: int, max_steps: Optional[int]):
        if trials < 1:
            raise SimulationError(f"need at least one trial, got {trials}")
        self.trials = trials
        self.max_steps = max_steps
        self.live = np.ones(trials, dtype=bool)
        self.lanes_live = np.ones(trials * WARP_SIZE, dtype=bool)
        self.outcomes: List[Optional[str]] = [None] * trials
        #: why a trial fell back to the scalar oracle (None for trials
        #: that got a tensor verdict): ``divergent_barrier``,
        #: ``union_error``, or ``union_deadlock``
        self.fallback_reasons: List[Optional[str]] = [None] * trials
        self.steps = np.zeros(trials, dtype=np.int64)

    def finish(self, trial: int, outcome: str,
               reason: Optional[str] = None) -> None:
        """Terminate ``trial`` with ``outcome``; its lanes vanish batch-wide."""
        if not self.live[trial]:
            return
        self.live[trial] = False
        self.outcomes[trial] = outcome
        if outcome == TRIAL_FALLBACK:
            self.fallback_reasons[trial] = reason
        base = trial * WARP_SIZE
        self.lanes_live[base:base + WARP_SIZE] = False

    def finish_live(self, outcome: str,
                    reason: Optional[str] = None) -> None:
        """Terminate every still-running trial with ``outcome``."""
        for trial in np.nonzero(self.live)[0]:
            self.finish(int(trial), outcome, reason)

    def tick(self, trial_active: np.ndarray) -> None:
        """Account one executed step for the active, still-live trials.

        Mirrors the scalar :meth:`~repro.gpu.watchdog.Watchdog.tick`
        discipline: a trial halted *during* the step does not tick it
        (the scalar run aborts before the tick), and a trial pushed past
        ``max_steps`` finishes as a hang — the
        :class:`~repro.errors.HangError` bin of the scalar path.
        """
        ticking = trial_active & self.live
        if not ticking.any():
            return
        self.steps[ticking] += 1
        if self.max_steps is not None:
            hung = ticking & (self.steps > self.max_steps)
            for trial in np.nonzero(hung)[0]:
                self.finish(int(trial), TRIAL_HANG)


class _IndexedWords(dict):
    """Taint-word map with a register → lanes index kept in sync.

    The scalar tracker scans its (tiny) word map per register access;
    a batched warp can carry one taint per struck trial — thousands —
    so every mutation path of :class:`~repro.gpu.resilience.TaintTracker`
    (``words[key] = ...``, ``words.pop(key)``) maintains the index here
    and :meth:`TrialWarp._tainted_lanes_of` becomes one dict lookup.
    """

    def __init__(self):
        super().__init__()
        self.by_register: dict = {}

    def __setitem__(self, key, value):
        if key not in self:
            self.by_register.setdefault(key[0], set()).add(key[1])
        super().__setitem__(key, value)

    def __delitem__(self, key):
        super().__delitem__(key)
        self._drop(key)

    def pop(self, key, *default):
        had = key in self
        value = super().pop(key, *default)
        if had:
            self._drop(key)
        return value

    def _drop(self, key):
        lanes = self.by_register.get(key[0])
        if lanes is not None:
            lanes.discard(key[1])
            if not lanes:
                del self.by_register[key[0]]


class _OffsetTaint:
    """Adapter translating one trial's local lanes to flat taint keys.

    :func:`~repro.gpu.warp.apply_fault_strike` speaks scalar lane
    indices (0..31); the batched warp's :class:`TaintTracker` keys lanes
    flat.  This exposes exactly the taint methods the strike path calls,
    offsetting each lane by the firing trial's base.
    """

    def __init__(self, taint: TaintTracker, base: int):
        self._taint = taint
        self._base = base

    def taint_original(self, register: int, lane: int,
                       bad_value: int) -> None:
        """Delegate with the trial-offset lane."""
        self._taint.taint_original(register, lane + self._base, bad_value)

    def taint_data_with_true_check(self, register: int, lane: int,
                                   bad_value: int, true_value: int) -> None:
        """Delegate with the trial-offset lane."""
        self._taint.taint_data_with_true_check(
            register, lane + self._base, bad_value, true_value)

    def taint_storage_mask(self, register: int, lane: int, true_value: int,
                           strike_mask: int) -> None:
        """Delegate with the trial-offset lane."""
        self._taint.taint_storage_mask(
            register, lane + self._base, true_value, strike_mask)

    def taint_check_strike(self, register: int, lane: int, true_value: int,
                           bits: Sequence[int]) -> bool:
        """Delegate with the trial-offset lane."""
        return self._taint.taint_check_strike(
            register, lane + self._base, true_value, bits)


class TrialWarp(Warp):
    """One warp position executed for every trial of a batch at once.

    State vectors are ``(trials * 32,)`` wide; flat lane ``l`` belongs
    to trial ``l // 32`` at local lane ``l % 32``.  Instruction
    semantics inherit from :class:`~repro.gpu.warp.Warp` unchanged —
    only the trial-aware pieces are overridden: per-trial fault gating,
    per-trial detection halts, per-trial crash/hang termination,
    trial-blocked SHFL lane arithmetic, and trial-offset memory access.
    """

    def __init__(self, kernel: Kernel, cta_index: int, warp_index: int,
                 thread_count: int, threads_per_cta: int, grid_ctas: int,
                 register_count: int, global_memory: TrialMemory,
                 shared_memory: Optional[TrialMemory],
                 states: Sequence[ResilienceState], batch: TrialBatch):
        trials = batch.trials
        self.kernel = kernel
        self.cta_index = cta_index
        self.warp_index = warp_index
        self.global_memory = global_memory
        self.shared_memory = shared_memory
        self.resilience = None  # per-trial states replace the shared one
        self.states = list(states)
        self.batch = batch
        self.trials = trials
        self.width = trials * WARP_SIZE

        self.regs = np.zeros((max(register_count, 1), self.width),
                             dtype=np.uint32)
        self.preds = np.zeros((8, self.width), dtype=bool)
        self.preds[PT] = True
        lanes32 = np.arange(WARP_SIZE, dtype=np.uint32)
        self.alive = np.tile(lanes32 < thread_count, trials) \
            & batch.lanes_live
        self.stack: List[StackEntry] = [
            StackEntry(0, self.alive.copy(), None)]
        self.at_barrier = False
        self.done = False
        #: per-trial datapath occurrence counters, ``(trials,)`` int64
        self.datapath_counter = np.zeros(trials, dtype=np.int64)
        mode = self.states[0].mode
        self.taint: Optional[TaintTracker] = (
            TaintTracker(self.states[0].scheme)
            if mode == "swap" else None)
        if self.taint is not None:
            self.taint.words = _IndexedWords()

        self.special = {
            "SR_TID": np.tile(
                (warp_index * WARP_SIZE + lanes32).astype(np.uint32),
                trials),
            "SR_CTAID": np.full(self.width, cta_index, dtype=np.uint32),
            "SR_NTID": np.full(self.width, threads_per_cta,
                               dtype=np.uint32),
            "SR_NCTAID": np.full(self.width, grid_ctas, dtype=np.uint32),
            "SR_LANE": np.tile(lanes32, trials),
        }
        self.observer = None
        self._last_segments: tuple = ()

        # Per-trial fault-plan placement, vectorized for the write gate
        # (-1 where a trial carries no plan, so it can never match).
        self._plan_cta = np.full(trials, -1, dtype=np.int64)
        self._plan_warp = np.full(trials, -1, dtype=np.int64)
        self._plan_occurrence = np.full(trials, -1, dtype=np.int64)
        self._fired = np.zeros(trials, dtype=bool)
        for trial, state in enumerate(self.states):
            plan = state.fault
            self._fired[trial] = state.fault_fired
            if plan is not None:
                self._plan_cta[trial] = plan.cta_index
                self._plan_warp[trial] = plan.warp_index
                self._plan_occurrence[trial] = plan.occurrence

    # ------------------------------------------------------------------
    # per-trial liveness plumbing
    # ------------------------------------------------------------------
    def _trials_of(self, mask: np.ndarray) -> np.ndarray:
        """Trial indices with at least one set lane in ``mask``."""
        return np.nonzero(
            mask.reshape(self.trials, WARP_SIZE).any(axis=1))[0]

    def _tainted_lanes_of(self, register: int) -> list:
        """Indexed lookup into the batch-wide taint map (vs. a scan)."""
        lanes = self.taint.words.by_register.get(register)
        return list(lanes) if lanes else []

    def _writeback_mask(self, mask: np.ndarray) -> np.ndarray:
        """Drop lanes of trials halted earlier in this instruction."""
        return mask & self.batch.lanes_live

    def current_entry(self) -> Optional[StackEntry]:
        """Pop finished entries; return the runnable top (None when done).

        Running off the end of the kernel — the scalar ``missing EXIT?``
        :class:`~repro.errors.SimulationError` — crashes exactly the
        trials whose lanes sit in the offending entry; everyone else
        keeps executing.
        """
        while self.stack:
            top = self.stack[-1]
            if top.reconv is not None and top.pc == top.reconv:
                self.stack.pop()
                continue
            mask = top.mask & self.alive & self.batch.lanes_live
            if not mask.any():
                self.stack.pop()
                continue
            if top.pc >= len(self.kernel.instructions):
                for trial in self._trials_of(mask):
                    self.batch.finish(int(trial), TRIAL_CRASH)
                continue
            return top
        self.done = True
        return None

    # ------------------------------------------------------------------
    # per-trial detection and fault injection
    # ------------------------------------------------------------------
    def _check_tainted_read(self, registers, mask) -> None:
        taint = self.taint
        if not taint or not taint.words:
            return
        live_mask = mask & self.batch.lanes_live
        keys = [(register, lane)
                for register in registers
                for lane in sorted(
                    lane for lane in self._tainted_lanes_of(register)
                    if live_mask[lane])]
        if not keys:
            return
        decoded = taint.read_many(keys)
        pc = self.stack[-1].pc if self.stack else -1
        for (register, lane), status, data in zip(keys, decoded.status,
                                                  decoded.data):
            trial = lane // WARP_SIZE
            if not self.batch.live[trial]:
                # This trial halted at an earlier key of the same read;
                # its scalar run never reaches the later lanes.
                continue
            state = self.states[trial]
            if status == READ_DUE:
                state.record("due", self.cta_index, self.warp_index, pc,
                             f"R{register} lane {lane % WARP_SIZE}")
                if state.halt_on_detect:
                    self.batch.finish(trial, TRIAL_HALT)
            elif status == READ_CORRECTED:
                state.record("corrected", self.cta_index, self.warp_index,
                             pc, f"R{register} lane {lane % WARP_SIZE}")
                self.regs[register][lane] = int(data) & 0xFFFF_FFFF

    def _maybe_inject_fault(self, instruction: Instruction,
                            values: np.ndarray, mask: np.ndarray,
                            is_64bit: bool):
        """Fire each trial's plan on its own 32-lane slice when due.

        The placement gate is vectorized over trials (one boolean
        reduction per datapath writeback); the strike itself — at most
        once per trial per run — delegates to the shared scalar
        :func:`~repro.gpu.warp.apply_fault_strike` on the slice, with
        taint keys and protections offset back to flat lanes.
        """
        if instruction.spec.pipe.value not in DATAPATH_PIPES:
            return values, set()
        due = (~self._fired
               & (self._plan_cta == self.cta_index)
               & (self._plan_warp == self.warp_index)
               & (self._plan_occurrence == self.datapath_counter)
               & self.batch.live)
        if not due.any():
            return values, set()
        role = instruction.meta.get("role")
        dest = instruction.dest.value
        protected = set()
        values = values.copy()
        for trial in np.nonzero(due)[0]:
            trial = int(trial)
            state = self.states[trial]
            base = trial * WARP_SIZE
            block = slice(base, base + WARP_SIZE)
            taint_view = _OffsetTaint(self.taint, base) \
                if self.taint is not None else None
            struck, keys = apply_fault_strike(
                state.fault, state, taint_view, role, dest,
                values[block], mask[block], is_64bit)
            values[block] = struck
            protected.update((register, lane + base)
                             for register, lane in keys)
            self._fired[trial] = state.fault_fired
        return values, protected

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[np.ndarray]:
        """Execute one instruction for every live trial at once.

        Returns the ``(trials,)`` boolean vector of trials that had
        active lanes this step (the scalar runs that would have called
        ``step()`` here) — the caller ticks those trials' budgets — or
        None when the warp has finished.
        """
        entry = self.current_entry()
        if entry is None:
            return None
        pc = entry.pc
        instruction = self.kernel.instructions[pc]
        active = entry.mask & self.alive & self.batch.lanes_live
        trial_active = active.reshape(self.trials, WARP_SIZE).any(axis=1)
        if instruction.predicate is not None:
            pred_mask = self.preds[instruction.predicate]
            if instruction.predicate_negated:
                pred_mask = ~pred_mask
            exec_mask = active & pred_mask
        else:
            exec_mask = active

        op = instruction.op
        spec = instruction.spec
        if op == "BRA":
            self._exec_branch(entry, instruction, active, exec_mask)
        elif op == "EXIT":
            self.alive &= ~exec_mask
            entry.pc = pc + 1
        elif op == "BAR":
            entry.pc = pc + 1
            self._exec_barrier(active)
        elif op == "BPT":
            entry.pc = pc + 1
            exec_trials = exec_mask.reshape(
                self.trials, WARP_SIZE).any(axis=1)
            for trial in np.nonzero(exec_trials & self.batch.live)[0]:
                trial = int(trial)
                state = self.states[trial]
                state.record("trap", self.cta_index, self.warp_index, pc,
                             "BPT")
                if state.halt_on_detect:
                    self.batch.finish(trial, TRIAL_HALT)
        elif op == "NOP":
            entry.pc = pc + 1
        else:
            entry.pc = pc + 1
            if exec_mask.any():
                self._exec_data(instruction, exec_mask)

        if spec.writes_dest and spec.pipe.value in DATAPATH_PIPES:
            exec_trials = exec_mask.reshape(
                self.trials, WARP_SIZE).any(axis=1)
            # Trials halted mid-instruction never reach the scalar
            # counter increment, so only still-live trials advance.
            self.datapath_counter[exec_trials & self.batch.live] += 1
        return trial_active

    def _exec_barrier(self, active: np.ndarray) -> None:
        """Arrive at a BAR; flag cross-trial divergent arrivals.

        A trial whose lanes are alive in this warp but absent from the
        arriving stack entry has *not* reached this barrier in its own
        scalar schedule — blocking the shared warp would synchronize it
        spuriously.  Those trials are handed to the scalar oracle
        (``fallback``); trials arriving with all their live lanes (or
        with none left in this warp) block exactly as scalar does.
        """
        alive_trials = (self.alive & self.batch.lanes_live).reshape(
            self.trials, WARP_SIZE).any(axis=1)
        arrived = active.reshape(self.trials, WARP_SIZE).any(axis=1)
        divergent = alive_trials & ~arrived & self.batch.live
        for trial in np.nonzero(divergent)[0]:
            self.batch.finish(int(trial), TRIAL_FALLBACK,
                              reason="divergent_barrier")
        self.at_barrier = True

    def _exec_shfl(self, instruction: Instruction,
                   mask: np.ndarray) -> None:
        """Warp shuffle with lane arithmetic inside each trial's block."""
        value = self.read_u32(instruction.sources[0], mask)
        amount = self.read_u32(instruction.sources[1],
                               mask).astype(np.int64)
        flat = np.arange(self.width, dtype=np.int64)
        local = flat % WARP_SIZE
        base = flat - local
        modifiers = instruction.meta.get("modifiers", [])
        if "BFLY" in modifiers:
            source_local = local ^ amount
        elif "UP" in modifiers:
            source_local = local - amount
        elif "DOWN" in modifiers:
            source_local = local + amount
        else:  # IDX
            source_local = amount
        valid = (source_local >= 0) & (source_local < WARP_SIZE)
        source_lane = np.where(valid, base + source_local, flat)
        gathered = value[source_lane]
        src_active = mask[source_lane]
        result = np.where(valid & src_active, gathered, value)
        self.write_result(instruction, result.astype(np.uint32), mask,
                          False)

    def _exec_memory(self, instruction: Instruction,
                     mask: np.ndarray) -> int:
        """Trial-offset memory access with per-trial crash containment.

        An out-of-bounds lane address — the scalar oracle's
        :class:`~repro.errors.SimulationError` — crashes only that
        trial: its lanes drop out before any word is read or written,
        and every in-range trial proceeds.
        """
        op = instruction.op
        srcs = instruction.sources
        modifiers = instruction.meta.get("modifiers", [])
        space = self.global_memory if op in ("LDG", "STG", "ATOM") \
            else self.shared_memory
        if space is None:
            raise SimulationError(f"{op} executed without shared memory")
        wide = "64" in modifiers or (
            instruction.dest is not None
            and instruction.dest.kind is OperandKind.REGISTER64) or (
            op in ("STG", "STS")
            and srcs[1].kind is OperandKind.REGISTER64)

        if op in ("STG", "STS", "ATOM"):
            address_operand, value_operand = srcs[0], srcs[1]
        else:
            address_operand, value_operand = srcs[0], None
        addresses = self.read_u32(address_operand, mask).astype(np.int64) \
            + instruction.offset
        mask = mask & self.batch.lanes_live  # address read may halt trials
        checked = np.where(mask, addresses, 0).astype(np.uint32)
        parts = [checked]
        if wide:
            parts.append((checked + 1).astype(np.uint32))
        for trial in space.oob_trials(parts, mask):
            self.batch.finish(int(trial), TRIAL_CRASH)
        mask = mask & self.batch.lanes_live
        if not mask.any():
            return 0

        if op in ("LDG", "LDS"):
            low = space.gather(checked, mask)
            if wide:
                high = space.gather(parts[1], mask)
                value = low.astype(np.uint64) | (
                    high.astype(np.uint64) << np.uint64(32))
                self.write_result(instruction, value, mask, True)
            else:
                self.write_result(instruction, low, mask, False)
        elif op in ("STG", "STS"):
            if wide:
                value = self.read_u64(value_operand, mask)
                mask = mask & self.batch.lanes_live
                space.scatter(checked,
                              (value & np.uint64(0xFFFF_FFFF)).astype(
                                  np.uint32), mask)
                space.scatter(parts[1],
                              (value >> np.uint64(32)).astype(np.uint32),
                              mask)
            else:
                value = self.read_u32(value_operand, mask)
                mask = mask & self.batch.lanes_live
                space.scatter(checked, value, mask)
        else:  # ATOM
            atom_op = next(m for m in modifiers
                           if m in ("ADD", "MAX", "MIN", "EXCH"))
            value = self.read_u32(value_operand, mask)
            mask = mask & self.batch.lanes_live
            old = space.atomic(atom_op, checked, value, mask)
            self.write_result(instruction, old, mask, False)
        return 0


@dataclass
class TrialRunResult:
    """What one batched launch reports back, per trial.

    ``outcomes[t]`` is one of the ``TRIAL_*`` labels; ``states[t]`` is
    the trial's own resilience state (events, ``fault_fired``);
    ``steps[t]`` the functional steps its scalar run would have
    executed; ``memory.space_of(t)`` its final global-memory image.
    Trials labelled :data:`TRIAL_FALLBACK` carry no verdict — rerun
    them through the scalar oracle.
    """

    outcomes: List[str]
    states: List[ResilienceState]
    steps: np.ndarray
    memory: TrialMemory
    #: per-trial fallback attribution (``divergent_barrier`` /
    #: ``union_error`` / ``union_deadlock``; None for decided trials)
    fallback_reasons: List[Optional[str]] = field(default_factory=list)


def run_trials(kernel: Kernel, launch: LaunchConfig, image: np.ndarray,
               states: Sequence[ResilienceState],
               max_steps: Optional[int] = 50_000_000,
               register_count: Optional[int] = None) -> TrialRunResult:
    """Run ``len(states)`` independent fault trials as one tensor sweep.

    The batched counterpart of calling
    :func:`repro.gpu.device.run_functional` once per trial on a fresh
    copy of ``image`` (a ``(words,)`` uint32 launch memory): CTAs run
    sequentially, warps within a CTA round-robin until blocked, and
    every instruction executes once for the whole ``(trials * 32)``-wide
    virtual warp.  Each state must be fresh (unfired, eventless) and all
    must share one resilience mode; in ``swap`` mode the first state's
    scheme decodes every trial's taints (schemes are stateless codecs,
    so sharing one is observationally identical to the scalar path's
    per-trial instances).

    Exactness contract: every returned trial matches its scalar oracle
    run bit for bit — outcome bin, detection events, memory image, and
    step count — except trials labelled ``fallback``, which the caller
    must rerun scalar to get a verdict (cross-trial divergent barrier
    arrivals and union-level deadlocks/errors take that route rather
    than guessing).
    """
    kernel.validate()
    states = list(states)
    if not states:
        raise SimulationError("run_trials needs at least one trial state")
    mode = states[0].mode
    for state in states:
        if state.mode != mode:
            raise SimulationError(
                "all trial states must share one resilience mode")
        if state.fault_fired or state.events:
            raise SimulationError(
                "trial states must be fresh (unfired, no events)")
    trials = len(states)
    batch = TrialBatch(trials, max_steps)
    memory = TrialMemory(image, trials)
    if register_count is None:
        register_count = max(kernel.register_count(), 1)

    for cta_index in range(launch.grid_ctas):
        if not batch.live.any():
            break
        try:
            _run_cta(kernel, launch, cta_index, memory, states, batch,
                     register_count)
        except SimulationError:
            # A union-level failure (unimplemented opcode, deadlock
            # shape the shared stack cannot attribute): hand every
            # still-running trial to the scalar oracle.
            batch.finish_live(TRIAL_FALLBACK, reason="union_error")
            break
    for trial in range(trials):
        if batch.outcomes[trial] is None:
            batch.outcomes[trial] = TRIAL_OK
    return TrialRunResult(outcomes=batch.outcomes, states=states,
                          steps=batch.steps, memory=memory,
                          fallback_reasons=batch.fallback_reasons)


def _run_cta(kernel: Kernel, launch: LaunchConfig, cta_index: int,
             memory: TrialMemory, states: Sequence[ResilienceState],
             batch: TrialBatch, register_count: int) -> None:
    """One CTA of the batched launch (mirrors ``run_functional_cta``)."""
    shared = None
    if launch.shared_words_per_cta:
        shared = TrialMemory(
            np.zeros(launch.shared_words_per_cta, dtype=np.uint32),
            batch.trials, name=f"shared.cta{cta_index}")
    warps = []
    threads_left = launch.threads_per_cta
    for warp_index in range(launch.warps_per_cta):
        count = min(WARP_SIZE, threads_left)
        threads_left -= count
        warps.append(TrialWarp(kernel, cta_index, warp_index, count,
                               launch.threads_per_cta, launch.grid_ctas,
                               register_count, memory, shared, states,
                               batch))
    while True:
        progressed = False
        barrier_waiters = 0
        for warp in warps:
            if warp.done:
                continue
            if warp.at_barrier:
                barrier_waiters += 1
                continue
            while not warp.done and not warp.at_barrier:
                trial_active = warp.step()
                if trial_active is None:
                    break
                progressed = True
                batch.tick(trial_active)
                if not batch.live.any():
                    return
        if all(warp.done for warp in warps):
            return
        if not progressed:
            released = False
            if barrier_waiters:
                live_warps = [w for w in warps if not w.done]
                if live_warps and all(w.at_barrier for w in live_warps):
                    for warp in live_warps:
                        warp.at_barrier = False
                    released = True
            if not released:
                # The union deadlocked; per-trial attribution is not
                # sound here, so every live trial goes to the oracle.
                batch.finish_live(TRIAL_FALLBACK,
                                  reason="union_deadlock")
                return
