"""Warp-level functional execution with SIMT divergence.

A :class:`Warp` executes one instruction per :meth:`step` across its 32
lanes (vectorized with numpy).  Divergence uses a post-dominator SIMT
stack: every potentially-divergent branch carries a reconvergence point
(explicit ``reconv=`` label, defaulting to the fall-through instruction,
which is correct for backward loop branches); entries pop when execution
reaches their reconvergence pc.

This module is the *scalar* (one-trial) executor and the exact-
equivalence oracle for the trial-batched tensor executor in
:mod:`repro.gpu.tensor`, which stacks N independent fault trials into
one ``(trials * 32)``-wide virtual warp.  The pieces both executors
share live here as module-level helpers: the opcode lambda tables, the
fault-strike application (:func:`apply_fault_strike`), and the
single-pass memory-access profiles (:func:`global_access_profile`,
:func:`shared_bank_conflicts`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ecc.vectorized import READ_CORRECTED, READ_DUE
from repro.errors import SimulationError
from repro.gpu.isa import (OPCODES, PT, RZ, WARP_SIZE, Instruction, Operand,
                           OperandKind)
from repro.gpu.memory import MemorySpace
from repro.gpu.program import Kernel
from repro.gpu.resilience import ResilienceState, TaintTracker


#: pipes whose register-writing instructions advance the datapath
#: occurrence counter (the fault-injection window of a FaultPlan)
DATAPATH_PIPES = ("alu", "fma32", "fma64", "sfu")


class KernelHalt(Exception):
    """Raised to stop a launch after a detected error (DUE or trap)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class StackEntry:
    """One SIMT reconvergence-stack entry: a pc, its mask, its join pc.

    ``mask`` is a boolean lane vector — ``(32,)`` in the scalar executor,
    ``(trials * 32,)`` in the trial-batched one, where one entry tracks
    the union of every trial's lanes walking this path.
    """

    pc: int
    mask: np.ndarray
    reconv: Optional[int]


@dataclass
class StepInfo:
    """What one executed instruction did (for timing and profiling)."""

    instruction: Instruction
    pc: int
    active_lanes: int
    transactions: int = 0
    barrier: bool = False
    exited: bool = False
    #: 128B global-memory segments touched (for the SM cache model)
    segments: tuple = ()


class Warp:
    """One warp's architectural state and executor.

    All lane vectors are ``width`` wide — 32 here; ``trials * 32`` in the
    :class:`repro.gpu.tensor.TrialWarp` subclass, which reuses the
    execution methods below unchanged across its stacked trials.
    """

    #: lanes per state vector (overridden per instance by TrialWarp)
    width: int = WARP_SIZE

    def __init__(self, kernel: Kernel, cta_index: int, warp_index: int,
                 thread_count: int, threads_per_cta: int, grid_ctas: int,
                 register_count: int, global_memory: MemorySpace,
                 shared_memory: Optional[MemorySpace],
                 resilience: ResilienceState):
        self.kernel = kernel
        self.cta_index = cta_index
        self.warp_index = warp_index
        self.global_memory = global_memory
        self.shared_memory = shared_memory
        self.resilience = resilience

        self.regs = np.zeros((max(register_count, 1), WARP_SIZE),
                             dtype=np.uint32)
        self.preds = np.zeros((8, WARP_SIZE), dtype=bool)
        self.preds[PT] = True
        self.alive = np.zeros(WARP_SIZE, dtype=bool)
        self.alive[:thread_count] = True
        self.stack: List[StackEntry] = [
            StackEntry(0, self.alive.copy(), None)]
        self.at_barrier = False
        self.done = False
        self.datapath_counter = 0
        self.taint: Optional[TaintTracker] = (
            TaintTracker(resilience.scheme)
            if resilience.mode == "swap" else None)

        lanes = np.arange(WARP_SIZE, dtype=np.uint32)
        self.special = {
            "SR_TID": (warp_index * WARP_SIZE + lanes).astype(np.uint32),
            "SR_CTAID": np.full(WARP_SIZE, cta_index, dtype=np.uint32),
            "SR_NTID": np.full(WARP_SIZE, threads_per_cta, dtype=np.uint32),
            "SR_NCTAID": np.full(WARP_SIZE, grid_ctas, dtype=np.uint32),
            "SR_LANE": lanes.copy(),
        }
        #: optional observer with on_step(warp, info) and wants_values
        self.observer = None
        self._last_segments: tuple = ()

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------
    def current_entry(self) -> Optional[StackEntry]:
        """Pop finished entries; return the runnable top (None when done)."""
        while self.stack:
            top = self.stack[-1]
            if top.reconv is not None and top.pc == top.reconv:
                self.stack.pop()
                continue
            mask = top.mask & self.alive
            if not mask.any():
                self.stack.pop()
                continue
            if top.pc >= len(self.kernel.instructions):
                raise SimulationError(
                    f"{self.kernel.name}: warp ran off the end "
                    f"(pc={top.pc}); missing EXIT?")
            return top
        self.done = True
        return None

    # ------------------------------------------------------------------
    # register access
    # ------------------------------------------------------------------
    def _check_tainted_read(self, registers: Tuple[int, ...],
                            mask: np.ndarray) -> None:
        taint = self.taint
        if not taint or not taint.words:
            return
        # Gather every tainted lane this read touches and decode them all
        # in one vectorized register-file pass (read order: register as
        # listed, then lane ascending — matching the scalar read port).
        keys = [(register, lane)
                for register in registers
                for lane in sorted(
                    lane for lane in self._tainted_lanes_of(register)
                    if mask[lane])]
        if not keys:
            return
        batch = taint.read_many(keys)
        pc = self.stack[-1].pc if self.stack else -1
        for (register, lane), status, data in zip(keys, batch.status,
                                                  batch.data):
            if status == READ_DUE:
                self.resilience.record("due", self.cta_index,
                                       self.warp_index, pc,
                                       f"R{register} lane {lane}")
                if self.resilience.halt_on_detect:
                    raise KernelHalt("ecc-due")
            elif status == READ_CORRECTED:
                self.resilience.record("corrected", self.cta_index,
                                       self.warp_index, pc,
                                       f"R{register} lane {lane}")
                self.regs[register][lane] = int(data) & 0xFFFF_FFFF
            # OK: the (possibly wrong) stored data flows on.

    def read_u32(self, operand: Operand, mask: np.ndarray) -> np.ndarray:
        """Read ``operand`` as a ``(32,)`` uint32 lane vector.

        Register reads of tainted lanes run the scheme decoder first
        (:meth:`_check_tainted_read`), which is where Swap-ECC detection
        and in-place correction happen.
        """
        if operand.kind is OperandKind.IMMEDIATE:
            return np.full(self.width, operand.value & 0xFFFF_FFFF,
                           dtype=np.uint32)
        if operand.kind is OperandKind.SPECIAL:
            return self.special[operand.name]
        if operand.kind is OperandKind.REGISTER:
            if operand.value == RZ:
                return np.zeros(self.width, dtype=np.uint32)
            self._check_tainted_read((operand.value,), mask)
            return self.regs[operand.value]
        raise SimulationError(f"cannot read {operand} as 32-bit value")

    def read_f32(self, operand: Operand, mask: np.ndarray) -> np.ndarray:
        """Read ``operand`` as a ``(32,)`` float32 lane vector."""
        return self.read_u32(operand, mask).view(np.float32)

    def read_u64(self, operand: Operand, mask: np.ndarray) -> np.ndarray:
        """Read a 64-bit operand (even register pair) as ``(32,)`` uint64."""
        if operand.kind is OperandKind.REGISTER and operand.value == RZ:
            return np.zeros(self.width, dtype=np.uint64)
        if operand.kind is OperandKind.REGISTER64:
            if operand.value == RZ:
                return np.zeros(self.width, dtype=np.uint64)
            self._check_tainted_read((operand.value, operand.value + 1),
                                     mask)
            low = self.regs[operand.value].astype(np.uint64)
            high = self.regs[operand.value + 1].astype(np.uint64)
            return low | (high << np.uint64(32))
        raise SimulationError(f"cannot read {operand} as 64-bit value")

    def read_f64(self, operand: Operand, mask: np.ndarray) -> np.ndarray:
        """Read a 64-bit operand (even register pair) as ``(32,)`` float64."""
        return self.read_u64(operand, mask).view(np.float64)

    def read_pred(self, index: int) -> np.ndarray:
        """The ``(32,)`` boolean lane vector of predicate ``index``."""
        return self.preds[index]

    def _write_lanes(self, register: int, values: np.ndarray,
                     mask: np.ndarray) -> None:
        if register == RZ:
            return
        np.copyto(self.regs[register], values, where=mask)

    def _tainted_lanes_of(self, register: int) -> List[int]:
        """Lanes of ``register`` currently tainted (any order).

        The scalar tracker holds at most a couple of taints, so a scan
        of the word map is fine here; the trial-batched executor — whose
        map carries one taint per struck trial — overrides this with an
        indexed lookup.
        """
        return [lane for (tainted_register, lane) in self.taint.words
                if tainted_register == register]

    def _writeback_mask(self, mask: np.ndarray) -> np.ndarray:
        """Lanes allowed to commit architectural state.

        The scalar executor commits every execution-masked lane; the
        trial-batched executor overrides this to additionally drop lanes
        of trials halted (DUE/trap/crash) earlier in the same
        instruction, mirroring how a scalar :class:`KernelHalt` aborts
        before the remaining writes of that instruction happen.
        """
        return mask

    # ------------------------------------------------------------------
    # writeback with SwapCodes roles
    # ------------------------------------------------------------------
    def write_result(self, instruction: Instruction, values: np.ndarray,
                     mask: np.ndarray, is_64bit: bool) -> None:
        """Write an instruction result honouring its resilience role."""
        role = instruction.meta.get("role")
        dest = instruction.dest
        if dest is None or dest.value == RZ:
            return
        mask = self._writeback_mask(mask)
        values, protected = self._maybe_inject_fault(
            instruction, values, mask, is_64bit)
        if is_64bit:
            low = (values & np.uint64(0xFFFF_FFFF)).astype(np.uint32)
            high = (values >> np.uint64(32)).astype(np.uint32)
            parts = [(dest.value, low), (dest.value + 1, high)]
        else:
            parts = [(dest.value, values.astype(np.uint32))]

        if self.taint is not None and role == "shadow":
            # Masked writeback: check bits only.  Any mismatch against the
            # stored data means a fault hit this shadow's computation (or
            # the original's data is still wrong, in which case the check
            # bits now encode the recomputed value and the mismatch is
            # caught at the next read).  The fault-free fast path is one
            # vectorized compare per register — the per-lane Python loop
            # only runs over the (rare) tainted or mismatching lanes.
            words = self.taint.words
            for register, part in parts:
                stored = self.regs[register]
                for lane in list(self._tainted_lanes_of(register)):
                    if mask[lane]:
                        self.taint.on_shadow_write(register, lane,
                                                   int(part[lane]))
                differs = mask & (stored != part)
                if differs.any():
                    for lane in np.nonzero(differs)[0]:
                        lane = int(lane)
                        if (register, lane) not in words:
                            self.taint.taint_check_only(
                                register, lane, int(stored[lane]),
                                int(part[lane]))
            return

        for register, part in parts:
            self._write_lanes(register, part, mask)
            if self.taint is not None and self.taint.words:
                # Iterate the (small) taint map, not all 32 lanes.
                for lane in list(self._tainted_lanes_of(register)):
                    if mask[lane] and (register, lane) not in protected:
                        self.taint.on_full_write(register, lane)

    def _maybe_inject_fault(self, instruction: Instruction,
                            values: np.ndarray, mask: np.ndarray,
                            is_64bit: bool):
        """Apply a pending FaultPlan to this result; returns (values, keys).

        Placement gating (cta/warp/occurrence/pipe) lives here; the
        strike itself is :func:`apply_fault_strike`, shared with the
        trial-batched executor.  ``keys`` is the set of freshly-tainted
        (register, lane) pairs the writeback must not clear.
        """
        state = self.resilience
        plan = state.fault
        if (plan is None or state.fault_fired
                or plan.cta_index != self.cta_index
                or plan.warp_index != self.warp_index
                or self.datapath_counter != plan.occurrence
                or instruction.spec.pipe.value not in DATAPATH_PIPES):
            return values, set()
        return apply_fault_strike(plan, state, self.taint,
                                  instruction.meta.get("role"),
                                  instruction.dest.value, values, mask,
                                  is_64bit)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[StepInfo]:
        """Execute one instruction; None when the warp has finished."""
        entry = self.current_entry()
        if entry is None:
            return None
        pc = entry.pc
        instruction = self.kernel.instructions[pc]
        active = entry.mask & self.alive
        if instruction.predicate is not None:
            pred_mask = self.preds[instruction.predicate]
            if instruction.predicate_negated:
                pred_mask = ~pred_mask
            exec_mask = active & pred_mask
        else:
            exec_mask = active

        info = StepInfo(instruction, pc, int(exec_mask.sum()))
        op = instruction.op
        spec = instruction.spec

        if op == "BRA":
            self._exec_branch(entry, instruction, active, exec_mask)
        elif op == "EXIT":
            self.alive &= ~exec_mask
            entry.pc = pc + 1
            info.exited = True
        elif op == "BAR":
            self.at_barrier = True
            entry.pc = pc + 1
            info.barrier = True
        elif op == "BPT":
            entry.pc = pc + 1
            if exec_mask.any():
                self.resilience.record("trap", self.cta_index,
                                       self.warp_index, pc, "BPT")
                if self.resilience.halt_on_detect:
                    raise KernelHalt("trap")
        elif op == "NOP":
            entry.pc = pc + 1
        else:
            entry.pc = pc + 1
            if exec_mask.any():
                self._last_segments = ()
                info.transactions = self._exec_data(instruction, exec_mask)
                info.segments = self._last_segments

        if spec.writes_dest and exec_mask.any() \
                and spec.pipe.value in DATAPATH_PIPES:
            self.datapath_counter += 1
        if self.observer is not None:
            self.observer.on_step(self, info)
        return info

    def _exec_branch(self, entry: StackEntry, instruction: Instruction,
                     active: np.ndarray, taken: np.ndarray) -> None:
        pc = entry.pc
        target = self.kernel.labels[instruction.target]
        not_taken = active & ~taken
        if not taken.any():
            entry.pc = pc + 1
            return
        if not not_taken.any():
            entry.pc = target
            return
        if instruction.reconverge is not None:
            reconv = self.kernel.labels[instruction.reconverge]
        else:
            reconv = pc + 1
        entry.pc = reconv
        self.stack.append(StackEntry(pc + 1, not_taken.copy(), reconv))
        self.stack.append(StackEntry(target, taken.copy(), reconv))

    def _exec_data(self, instruction: Instruction,
                   mask: np.ndarray) -> int:
        """Execute a non-control instruction; returns memory transactions."""
        op = instruction.op
        srcs = instruction.sources
        with np.errstate(all="ignore"):
            if op in _INT_BINOPS:
                a = self.read_u32(srcs[0], mask)
                b = self.read_u32(srcs[1], mask)
                self.write_result(instruction, _INT_BINOPS[op](a, b), mask,
                                  False)
            elif op == "NOT":
                a = self.read_u32(srcs[0], mask)
                self.write_result(instruction, ~a, mask, False)
            elif op == "MOV":
                if instruction.dest.kind is OperandKind.REGISTER64:
                    self.write_result(instruction,
                                      self.read_u64(srcs[0], mask), mask,
                                      True)
                else:
                    self.write_result(instruction,
                                      self.read_u32(srcs[0], mask).copy(),
                                      mask, False)
            elif op == "IMAD":
                a = self.read_u32(srcs[0], mask).astype(np.uint64)
                b = self.read_u32(srcs[1], mask).astype(np.uint64)
                c = self.read_u32(srcs[2], mask).astype(np.uint64)
                result = ((a * b + c) & np.uint64(0xFFFF_FFFF)).astype(
                    np.uint32)
                self.write_result(instruction, result, mask, False)
            elif op in _FP32_OPS:
                args = [self.read_f32(src, mask) for src in srcs]
                result = _FP32_OPS[op](*args).astype(np.float32)
                self.write_result(instruction, result.view(np.uint32), mask,
                                  False)
            elif op in _FP64_OPS:
                args = [self.read_f64(src, mask) for src in srcs]
                result = _FP64_OPS[op](*args).astype(np.float64)
                self.write_result(instruction, result.view(np.uint64), mask,
                                  True)
            elif op == "I2F":
                value = self.read_u32(srcs[0], mask).view(np.int32)
                self.write_result(instruction,
                                  value.astype(np.float32).view(np.uint32),
                                  mask, False)
            elif op == "F2I":
                value = self.read_f32(srcs[0], mask)
                clipped = np.clip(np.nan_to_num(value), -2**31, 2**31 - 1)
                self.write_result(
                    instruction,
                    clipped.astype(np.int32).view(np.uint32), mask, False)
            elif op in ("ISETP", "FSETP", "DSETP"):
                self._exec_setp(instruction, mask)
            elif op == "SEL":
                a = self.read_u32(srcs[0], mask)
                b = self.read_u32(srcs[1], mask)
                chooser = self.preds[srcs[2].value]
                self.write_result(instruction,
                                  np.where(chooser, a, b).astype(np.uint32),
                                  mask, False)
            elif op == "S2R":
                self.write_result(instruction,
                                  self.special[srcs[0].name].copy(), mask,
                                  False)
            elif op == "SHFL":
                self._exec_shfl(instruction, mask)
            elif op in ("LDG", "LDS", "STG", "STS", "ATOM"):
                return self._exec_memory(instruction, mask)
            else:
                raise SimulationError(f"unimplemented opcode {op}")
        return 0

    def _exec_setp(self, instruction: Instruction, mask: np.ndarray) -> None:
        op = instruction.op
        srcs = instruction.sources
        if op == "ISETP":
            a = self.read_u32(srcs[0], mask).view(np.int32)
            b = self.read_u32(srcs[1], mask).view(np.int32)
        elif op == "FSETP":
            a = self.read_f32(srcs[0], mask)
            b = self.read_f32(srcs[1], mask)
        else:
            a = self.read_f64(srcs[0], mask)
            b = self.read_f64(srcs[1], mask)
        result = _COMPARES[instruction.compare](a, b)
        index = instruction.dest.value
        if index != PT:
            mask = self._writeback_mask(mask)
            np.copyto(self.preds[index], result, where=mask)

    def _exec_shfl(self, instruction: Instruction, mask: np.ndarray) -> None:
        value = self.read_u32(instruction.sources[0], mask)
        amount = self.read_u32(instruction.sources[1], mask).astype(np.int64)
        lanes = np.arange(WARP_SIZE, dtype=np.int64)
        modifiers = instruction.meta.get("modifiers", [])
        if "BFLY" in modifiers:
            source_lane = lanes ^ amount
        elif "UP" in modifiers:
            source_lane = lanes - amount
        elif "DOWN" in modifiers:
            source_lane = lanes + amount
        else:  # IDX
            source_lane = amount
        valid = (source_lane >= 0) & (source_lane < WARP_SIZE)
        source_lane = np.where(valid, source_lane, lanes)
        gathered = value[source_lane]
        # Lanes whose source is inactive keep their own value (defined
        # behaviour here; CUDA leaves it undefined).
        src_active = mask[source_lane]
        result = np.where(valid & src_active, gathered, value)
        self.write_result(instruction, result.astype(np.uint32), mask,
                          False)

    def _exec_memory(self, instruction: Instruction,
                     mask: np.ndarray) -> int:
        op = instruction.op
        srcs = instruction.sources
        modifiers = instruction.meta.get("modifiers", [])
        space = self.global_memory if op in ("LDG", "STG", "ATOM") \
            else self.shared_memory
        if space is None:
            raise SimulationError(f"{op} executed without shared memory")
        wide = "64" in modifiers or (
            instruction.dest is not None
            and instruction.dest.kind is OperandKind.REGISTER64) or (
            op in ("STG", "STS")
            and srcs[1].kind is OperandKind.REGISTER64)

        if op in ("STG", "STS", "ATOM"):
            address_operand, value_operand = srcs[0], srcs[1]
        else:
            address_operand, value_operand = srcs[0], None
        addresses = self.read_u32(address_operand, mask).astype(np.int64) + \
            instruction.offset
        addresses = addresses.astype(np.int64)
        checked = np.where(mask, addresses, 0).astype(np.uint32)

        if op in ("LDG", "LDS"):
            low = space.gather(checked, mask)
            if wide:
                high = space.gather((checked + 1).astype(np.uint32), mask)
                value = low.astype(np.uint64) | (
                    high.astype(np.uint64) << np.uint64(32))
                self.write_result(instruction, value, mask, True)
            else:
                self.write_result(instruction, low, mask, False)
        elif op in ("STG", "STS"):
            if wide:
                value = self.read_u64(value_operand, mask)
                space.scatter(checked,
                              (value & np.uint64(0xFFFF_FFFF)).astype(
                                  np.uint32), mask)
                space.scatter((checked + 1).astype(np.uint32),
                              (value >> np.uint64(32)).astype(np.uint32),
                              mask)
            else:
                space.scatter(checked, self.read_u32(value_operand, mask),
                              mask)
        else:  # ATOM
            atom_op = next(m for m in modifiers
                           if m in ("ADD", "MAX", "MIN", "EXCH"))
            old = space.atomic(atom_op, checked,
                               self.read_u32(value_operand, mask), mask)
            self.write_result(instruction, old, mask, False)

        if op in ("LDG", "STG", "ATOM"):
            transactions, self._last_segments = global_access_profile(
                checked, mask, wide)
            return max(1, transactions)
        return max(1, shared_bank_conflicts(checked, mask, wide))


def apply_fault_strike(plan, state: ResilienceState,
                       taint: Optional[TaintTracker], role: Optional[str],
                       dest: int, values: np.ndarray, mask: np.ndarray,
                       is_64bit: bool):
    """Strike one warp-width instruction result with a placed FaultPlan.

    Shared by the scalar :class:`Warp` and the trial-batched executor in
    :mod:`repro.gpu.tensor` (which passes the firing trial's 32-lane
    slice).  The caller has already verified the plan's placement gates
    (cta/warp/occurrence/pipe); this function decides whether the event
    *fires* and what it corrupts.  ``dest`` is the destination register
    index; ``values`` is the ``(32,)`` uint32 (or uint64 when
    ``is_64bit``) result vector and ``mask`` the boolean execution mask.

    Returns ``(values, protected)``: the possibly-corrupted result and
    the set of freshly-tainted ``(register, lane)`` keys the writeback
    must not clear.  One event may flip several bits
    (``plan.strike_bits``) in several lanes (``plan.strike_lanes``);
    bits past the value's width are dropped, not wrapped, and lanes
    that are inactive under the execution mask are untouched.
    """
    protected = set()
    active_lanes = [lane for lane in plan.strike_lanes if mask[lane]]
    if not active_lanes:
        return values, protected  # struck only inactive lanes: masked
    if plan.where == "storage" and role == "shadow":
        # Shadows own no data segment, so there is no stored data bit
        # for a storage strike to hit; the plan stays unfired.
        return values, protected
    state.fault_fired = True
    width = 64 if is_64bit else 32
    strike = plan.strike_mask(width)
    if strike == 0:
        # Every strike bit clipped past the value's edge: the event
        # fired without corrupting anything (campaigns bin it masked).
        return values, protected
    halves = _strike_halves(strike, is_64bit)

    if plan.where == "predictor":
        if taint is not None and role == "predicted":
            for lane in active_lanes:
                true_value = int(values[lane])
                for offset, half_mask in halves:
                    register = dest + offset
                    true_word = (true_value >> (32 * offset)) \
                        & 0xFFFF_FFFF
                    bits = [index for index in range(32)
                            if half_mask >> index & 1]
                    if taint.taint_check_strike(
                            register, lane, true_word, bits):
                        protected.add((register, lane))
        return values, protected

    corrupted = values.copy()
    for lane in active_lanes:
        true_value = int(corrupted[lane])
        bad_value = true_value ^ strike
        if is_64bit:
            corrupted[lane] = np.uint64(bad_value)
        else:
            corrupted[lane] = np.uint32(bad_value & 0xFFFF_FFFF)

        if plan.where == "storage":
            # The strike lands in the RF cell after the pair
            # completes: the architectural data flips, but the check
            # bits (and the DP bit) keep describing the true value,
            # so correcting schemes scrub it at the next read.
            if taint is not None:
                for offset, half_mask in halves:
                    register = dest + offset
                    true_word = (true_value >> (32 * offset)) \
                        & 0xFFFF_FFFF
                    taint.taint_storage_mask(
                        register, lane, true_word, half_mask)
                    protected.add((register, lane))
            continue

        # Data-path fault: corrupt the computed value.
        if taint is not None and role != "shadow":
            # Shadows never write data: the masked-writeback compare
            # in write_result turns their corrupted value into a
            # check-only taint, so no word is created here.
            for offset, half_mask in halves:
                register = dest + offset
                true_word = (true_value >> (32 * offset)) & 0xFFFF_FFFF
                bad_word = true_word ^ half_mask
                if role == "predicted":
                    taint.taint_data_with_true_check(
                        register, lane, bad_word, true_word)
                else:
                    # Originals (and unpaired writes) emit a valid
                    # codeword of the bad value; the shadow's later
                    # masked write exposes it.
                    taint.taint_original(register, lane, bad_word)
                protected.add((register, lane))
    return corrupted, protected


def _strike_halves(strike: int, is_64bit: bool):
    """Split a strike mask into per-register (offset, 32-bit mask) parts.

    64-bit values live in two consecutive 32-bit registers, so a wide
    strike may taint both; each returned entry names the register
    offset from the destination and the mask within that word.
    """
    if not is_64bit:
        return [(0, strike & 0xFFFF_FFFF)]
    halves = []
    if strike & 0xFFFF_FFFF:
        halves.append((0, strike & 0xFFFF_FFFF))
    if strike >> 32:
        halves.append((1, strike >> 32))
    return halves


def global_access_profile(addresses: np.ndarray, mask: np.ndarray,
                          wide: bool) -> Tuple[int, tuple]:
    """Coalescing profile of one global access in a single pass.

    Returns ``(transactions, segments)``.  ``transactions`` is the
    number of distinct 128-byte segments touched, summed over the one
    (narrow) or two (wide) 32-bit parts — wide accesses issue each part
    as its own warp-wide transaction, matching
    :meth:`MemorySpace.transactions` called per part.  ``segments`` is
    the sorted tuple of all distinct segment indices (for the SM cache
    model).  ``addresses`` must already be masked-safe (inactive lanes
    zeroed); previously this took two ``np.unique`` passes per part.
    """
    if not mask.any():
        return 0, ()
    active = addresses[mask]
    low = np.unique(active // 32)
    if wide:
        high = np.unique((active + 1) // 32)
        transactions = int(low.size + high.size)
        segments = np.union1d(low, high)
    else:
        transactions = int(low.size)
        segments = low
    return transactions, tuple(int(s) for s in segments)


def shared_bank_conflicts(addresses: np.ndarray, mask: np.ndarray,
                          wide: bool) -> int:
    """Serialized shared-memory conflict count for one access.

    Lanes reading the same address broadcast (one access), so each
    32-bit part counts *distinct* addresses per bank, maximized over
    the 32 banks; wide accesses sum their two parts.
    """
    if not mask.any():
        return 0
    active = addresses[mask]
    conflicts = _max_addresses_per_bank(active)
    if wide:
        conflicts += _max_addresses_per_bank(active + 1)
    return conflicts


def _max_addresses_per_bank(active: np.ndarray) -> int:
    unique_addresses = np.unique(active)
    __, counts = np.unique(unique_addresses % 32, return_counts=True)
    return int(counts.max())


def _shift_mask(values: np.ndarray) -> np.ndarray:
    return values & np.uint32(31)


_INT_BINOPS: Dict[str, Callable] = {
    "IADD": lambda a, b: a + b,
    "ISUB": lambda a, b: a - b,
    "IMUL": lambda a, b: a * b,
    "IMIN": lambda a, b: np.minimum(a.view(np.int32),
                                    b.view(np.int32)).view(np.uint32),
    "IMAX": lambda a, b: np.maximum(a.view(np.int32),
                                    b.view(np.int32)).view(np.uint32),
    "SHL": lambda a, b: a << _shift_mask(b),
    "SHR": lambda a, b: a >> _shift_mask(b),
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
}

_FP32_OPS: Dict[str, Callable] = {
    "FADD": lambda a, b: a + b,
    "FSUB": lambda a, b: a - b,
    "FMUL": lambda a, b: a * b,
    "FFMA": lambda a, b, c: a * b + c,
    "FMIN": np.minimum,
    "FMAX": np.maximum,
    "FRCP": lambda a: np.float32(1.0) / a,
    "FSQRT": np.sqrt,
    "FEXP": np.exp,
    "FLOG": lambda a: np.log(np.abs(a) + np.float32(1e-30)),
}

_FP64_OPS: Dict[str, Callable] = {
    "DADD": lambda a, b: a + b,
    "DSUB": lambda a, b: a - b,
    "DMUL": lambda a, b: a * b,
    "DFMA": lambda a, b, c: a * b + c,
    "DRCP": lambda a: 1.0 / a,
}

_COMPARES: Dict[str, Callable] = {
    "LT": lambda a, b: a < b,
    "LE": lambda a, b: a <= b,
    "EQ": lambda a, b: a == b,
    "NE": lambda a, b: a != b,
    "GE": lambda a, b: a >= b,
    "GT": lambda a, b: a > b,
}
