"""Global and shared memory spaces (word-addressed) with coalescing stats.

All addresses in the simulator are indices of 32-bit words.  The memory
subsystem sits outside the SwapCodes sphere of replication (Figure 1) and
is assumed storage-ECC protected, so it needs no error modelling — only
functional behaviour plus the transaction counts the timing model uses.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import SimulationError

#: words per memory transaction segment (128B lines / 4B words)
SEGMENT_WORDS = 32


class MemorySpace:
    """A flat word-addressed memory backed by a numpy uint32 array."""

    def __init__(self, words: int, name: str = "global"):
        if words <= 0:
            raise SimulationError(f"memory size must be positive: {words}")
        self.name = name
        self.words = np.zeros(words, dtype=np.uint32)

    def __len__(self) -> int:
        return len(self.words)

    # ------------------------------------------------------------------
    # scalar and array host access
    # ------------------------------------------------------------------
    def write_words(self, address: int, values) -> None:
        """Store ``values`` (coerced to uint32) at ``address`` onward."""
        values = np.asarray(values, dtype=np.uint32)
        self._check_range(address, len(values))
        self.words[address:address + len(values)] = values

    def read_words(self, address: int, count: int) -> np.ndarray:
        """A ``(count,)`` uint32 copy of the words at ``address``."""
        self._check_range(address, count)
        return self.words[address:address + count].copy()

    def write_f32(self, address: int, values) -> None:
        """Store float32 values bit-cast into their uint32 words."""
        self.write_words(address,
                         np.asarray(values, dtype=np.float32).view(np.uint32))

    def read_f32(self, address: int, count: int) -> np.ndarray:
        """Read ``count`` words bit-cast back to a float32 array."""
        return self.read_words(address, count).view(np.float32)

    def write_f64(self, address: int, values) -> None:
        """Store float64 values as little-endian low/high word pairs."""
        raw = np.asarray(values, dtype=np.float64).view(np.uint64)
        words = np.empty(2 * len(raw), dtype=np.uint32)
        words[0::2] = (raw & 0xFFFF_FFFF).astype(np.uint32)
        words[1::2] = (raw >> 32).astype(np.uint32)
        self.write_words(address, words)

    def read_f64(self, address: int, count: int) -> np.ndarray:
        """Read ``count`` low/high word pairs back to a float64 array."""
        words = self.read_words(address, 2 * count)
        raw = words[0::2].astype(np.uint64) | \
            (words[1::2].astype(np.uint64) << 32)
        return raw.view(np.float64)

    def write_i32(self, address: int, values) -> None:
        """Store int32 values bit-cast into their uint32 words."""
        self.write_words(address,
                         np.asarray(values, dtype=np.int32).view(np.uint32))

    def read_i32(self, address: int, count: int) -> np.ndarray:
        """Read ``count`` words bit-cast back to an int32 array."""
        return self.read_words(address, count).view(np.int32)

    # ------------------------------------------------------------------
    # SIMT access (one address per active lane)
    # ------------------------------------------------------------------
    def gather(self, addresses: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Masked per-lane load; inactive lanes read as zero."""
        result = np.zeros(len(addresses), dtype=np.uint32)
        if not mask.any():
            return result
        active = addresses[mask]
        self._check_lanes(active)
        result[mask] = self.words[active]
        return result

    def scatter(self, addresses: np.ndarray, values: np.ndarray,
                mask: np.ndarray) -> None:
        """Masked per-lane store; lane order resolves write conflicts."""
        if not mask.any():
            return
        active = addresses[mask]
        self._check_lanes(active)
        self.words[active] = values[mask]

    def atomic(self, op: str, addresses: np.ndarray, values: np.ndarray,
               mask: np.ndarray) -> np.ndarray:
        """Per-lane read-modify-write; returns the old values.

        Lanes execute in lane order, so colliding addresses serialize —
        the semantics CUDA guarantees (in unspecified order).
        """
        result = np.zeros(len(addresses), dtype=np.uint32)
        for lane in np.nonzero(mask)[0]:
            address = int(addresses[lane])
            self._check_range(address, 1)
            old = int(self.words[address])
            value = int(values[lane])
            if op == "ADD":
                new = (old + value) & 0xFFFF_FFFF
            elif op == "MAX":
                new = max(old, value)
            elif op == "MIN":
                new = min(old, value)
            elif op == "EXCH":
                new = value
            else:
                raise SimulationError(f"unknown atomic op {op!r}")
            self.words[address] = new
            result[lane] = old
        return result

    @staticmethod
    def transactions(addresses: np.ndarray, mask: np.ndarray) -> int:
        """Coalescing model: distinct 128-byte segments touched by a warp."""
        if not mask.any():
            return 0
        segments = np.unique(addresses[mask] // SEGMENT_WORDS)
        return len(segments)

    # ------------------------------------------------------------------
    def _check_range(self, address: int, count: int) -> None:
        if address < 0 or address + count > len(self.words):
            raise SimulationError(
                f"{self.name} access [{address}, {address + count}) outside "
                f"{len(self.words)} words")

    def _check_lanes(self, addresses: np.ndarray) -> None:
        if len(addresses) and (int(addresses.min()) < 0 or
                               int(addresses.max()) >= len(self.words)):
            raise SimulationError(
                f"{self.name} lane access out of range "
                f"(max {len(self.words)} words): "
                f"[{addresses.min()}, {addresses.max()}]")
