"""Activity-based GPU power and energy model (Figure 14's instrument).

The paper samples board power with ``nvprof --system-profiling on`` and
takes the 90th-percentile reading as the active-power estimate.  Here power
comes from first principles instead: static leakage plus per-instruction
switching energy by pipe, divided by kernel runtime.  The model reproduces
the paper's qualitative result — duplication changes *power* only modestly
(the added instructions raise utilization of hardware that was already
burning static power), so *energy* overhead tracks the runtime overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.gpu.device import LaunchResult

#: switching energy per issued warp instruction, nanojoules (32 lanes)
DEFAULT_ENERGY_PER_OP = {
    "alu": 4.0,
    "fma32": 6.0,
    "fma64": 16.0,
    "sfu": 10.0,
    "lsu": 8.0,
    "branch": 2.0,
}

#: extra energy per 128-byte memory transaction (DRAM + interconnect), nJ
ENERGY_PER_TRANSACTION = 20.0


@dataclass(frozen=True)
class PowerEstimate:
    """Active power and energy for one kernel launch."""

    seconds: float
    dynamic_joules: float
    static_watts: float

    @property
    def watts(self) -> float:
        """Active GPU power (the paper's 90th-percentile analog)."""
        if self.seconds <= 0:
            return self.static_watts
        return self.static_watts + self.dynamic_joules / self.seconds

    @property
    def joules(self) -> float:
        """Energy for the launch at constant active power."""
        return self.watts * self.seconds


@dataclass
class PowerModel:
    """Converts launch statistics into power/energy estimates."""

    static_watts: float = 60.0
    energy_per_op_nj: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_ENERGY_PER_OP))
    energy_per_transaction_nj: float = ENERGY_PER_TRANSACTION

    def estimate(self, result: LaunchResult) -> PowerEstimate:
        """Energy/power for one timed launch from its issue counters."""
        dynamic = 0.0
        for pipe, count in result.issued_by_pipe.items():
            dynamic += count * self.energy_per_op_nj.get(pipe, 5.0)
        dynamic += result.memory_transactions * \
            self.energy_per_transaction_nj
        return PowerEstimate(
            seconds=result.seconds,
            dynamic_joules=dynamic * 1e-9,
            static_watts=self.static_watts)
