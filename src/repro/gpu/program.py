"""Kernel containers and the helpers compiler passes use to rewrite them."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AssemblyError
from repro.gpu.isa import Instruction, Operand, OperandKind, RZ


@dataclass
class Kernel:
    """An assembled kernel: instructions plus label -> index map."""

    name: str
    instructions: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)

    def validate(self) -> None:
        """Check label targets and register ranges; raise on problems."""
        for index, instruction in enumerate(self.instructions):
            for label in (instruction.target, instruction.reconverge):
                if label is not None and label not in self.labels:
                    raise AssemblyError(
                        f"{self.name}[{index}]: undefined label {label!r}")

    def register_count(self) -> int:
        """Per-thread register usage (highest index used plus one).

        This is what the occupancy calculator sees: duplication passes that
        add shadow registers directly reduce resident warps.
        """
        highest = -1
        for instruction in self.instructions:
            operands = list(instruction.sources)
            if instruction.dest is not None:
                operands.append(instruction.dest)
            for operand in operands:
                for register in operand.registers():
                    highest = max(highest, register)
        return highest + 1

    def labels_at(self) -> Dict[int, List[str]]:
        """Invert the label map: instruction index -> label names."""
        at: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            at.setdefault(index, []).append(name)
        return at

    def listing(self) -> str:
        """Human-readable disassembly."""
        at = self.labels_at()
        lines = [f"// kernel {self.name} "
                 f"({len(self.instructions)} instructions, "
                 f"{self.register_count()} registers)"]
        for index, instruction in enumerate(self.instructions):
            for label in sorted(at.get(index, [])):
                lines.append(f"{label}:")
            lines.append(f"    {instruction}")
        for label in sorted(at.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines)


class KernelWriter:
    """Accumulates instructions and labels when building or rewriting."""

    def __init__(self, name: str):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fresh = 0

    def place_label(self, name: str) -> None:
        """Bind ``name`` to the next emitted instruction's index."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)

    def fresh_label(self, hint: str = "L") -> str:
        """A new unique label name (compiler passes splice blocks)."""
        self._fresh += 1
        return f".{hint}_{self._fresh}"

    def emit(self, instruction: Instruction) -> Instruction:
        """Append one instruction and return it for chaining."""
        self._instructions.append(instruction)
        return instruction

    def finish(self) -> Kernel:
        """Seal the stream into a validated :class:`Kernel`."""
        kernel = Kernel(self.name, self._instructions, self._labels)
        kernel.validate()
        return kernel


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry for one kernel launch (1-D grid, 1-D blocks)."""

    grid_ctas: int
    threads_per_cta: int
    shared_words_per_cta: int = 0

    def __post_init__(self):
        if self.grid_ctas <= 0 or self.threads_per_cta <= 0:
            raise AssemblyError("launch dimensions must be positive")
        if self.threads_per_cta > 1024:
            raise AssemblyError("at most 1024 threads per CTA")

    @property
    def warps_per_cta(self) -> int:
        """Warps needed per CTA (threads rounded up to 32)."""
        return (self.threads_per_cta + 31) // 32

    @property
    def total_threads(self) -> int:
        """Threads across the whole grid."""
        return self.grid_ctas * self.threads_per_cta
