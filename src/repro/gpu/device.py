"""Device-level launch API: the simulator's ``cudaLaunchKernel``."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gpu.memory import MemorySpace
from repro.gpu.program import Kernel, LaunchConfig
from repro.gpu.resilience import ResilienceState
from repro.gpu.sm import SmStats, StreamingMultiprocessor
from repro.gpu.timing import Occupancy, TimingParams
from repro.gpu.warp import KernelHalt, Warp
from repro.gpu.watchdog import Watchdog, WatchdogConfig


@dataclass
class LaunchResult:
    """Everything one kernel launch reports back."""

    kernel_name: str
    cycles: int
    seconds: float
    occupancy: Occupancy
    issued: int
    issued_by_pipe: Dict[str, int]
    memory_transactions: int
    resilience: ResilienceState
    halted: Optional[str] = None

    @property
    def detected(self) -> bool:
        """True when any DUE or checking trap fired during the launch."""
        return self.resilience.detected


class Device:
    """A GPU: several SMs sharing one global memory."""

    def __init__(self, params: Optional[TimingParams] = None):
        self.params = params if params is not None else TimingParams()

    def launch(self, kernel: Kernel, launch: LaunchConfig,
               global_memory: MemorySpace,
               resilience: Optional[ResilienceState] = None,
               observer=None,
               watchdog: Optional[Watchdog] = None) -> LaunchResult:
        """Run ``kernel`` with timing; CTAs round-robin across SMs.

        ``watchdog`` (optional) is ticked per issued instruction and has
        its wall-clock deadline polled by every SM; budget exhaustion
        raises :class:`~repro.errors.HangError`.
        """
        kernel.validate()
        state = resilience if resilience is not None else ResilienceState()
        if watchdog is not None:
            watchdog.start()
        occupancy = self.params.occupancy(kernel, launch)
        cycles = 0
        issued = 0
        issued_by_pipe: Dict[str, int] = {}
        transactions = 0
        halted = None
        for sm_index in range(self.params.num_sms):
            cta_indices = list(range(sm_index, launch.grid_ctas,
                                     self.params.num_sms))
            if not cta_indices:
                continue
            sm = StreamingMultiprocessor(
                sm_index, self.params, kernel, launch, global_memory,
                state, observer, watchdog)
            try:
                sm_cycles = sm.run(cta_indices)
            except KernelHalt as halt:
                halted = halt.reason
                sm_cycles = sm.stats.cycles
            cycles = max(cycles, sm_cycles)
            issued += sm.stats.issued
            transactions += sm.stats.memory_transactions
            for pipe, count in sm.stats.issued_by_pipe.items():
                issued_by_pipe[pipe] = issued_by_pipe.get(pipe, 0) + count
            if halted:
                break
        seconds = cycles / (self.params.clock_ghz * 1e9)
        return LaunchResult(
            kernel_name=kernel.name, cycles=cycles, seconds=seconds,
            occupancy=occupancy, issued=issued,
            issued_by_pipe=issued_by_pipe,
            memory_transactions=transactions, resilience=state,
            halted=halted)


def run_functional_cta(kernel: Kernel, launch: LaunchConfig, cta_index: int,
                       global_memory: MemorySpace,
                       resilience: Optional[ResilienceState] = None,
                       observer=None,
                       watchdog: Optional[Watchdog] = None,
                       register_count: Optional[int] = None,
                       step_limit: Optional[int] = None) -> int:
    """Run one CTA functionally to completion; returns steps executed.

    The building block under :func:`run_functional` and the recovery
    ladder's rung-1 CTA replay: register state is fresh (architectural
    checkpoint at CTA launch) and shared memory is pristine, so replaying
    a CTA only needs the pre-CTA global-memory image.  Warps round-robin
    so barriers and shared memory behave.

    Detections (:class:`~repro.gpu.warp.KernelHalt`) and watchdog
    verdicts (:class:`~repro.errors.HangError`) propagate to the caller.
    ``step_limit`` stops cleanly after that many steps — the containment
    auditor uses it to replay exactly the executed prefix of a detected
    run.  Scheduling is deterministic, which is what makes that replay
    comparable word for word.
    """
    from repro.errors import SimulationError

    state = resilience if resilience is not None else ResilienceState()
    if register_count is None:
        register_count = max(kernel.register_count(), 1)
    shared = None
    if launch.shared_words_per_cta:
        shared = MemorySpace(launch.shared_words_per_cta,
                             name=f"shared.cta{cta_index}")
    warps = []
    threads_left = launch.threads_per_cta
    for warp_index in range(launch.warps_per_cta):
        count = min(32, threads_left)
        threads_left -= count
        warp = Warp(kernel, cta_index, warp_index, count,
                    launch.threads_per_cta, launch.grid_ctas,
                    register_count, global_memory, shared, state)
        warp.observer = observer
        warps.append(warp)
    steps = 0
    while True:
        progressed = False
        barrier_waiters = 0
        for warp in warps:
            if warp.done:
                continue
            if warp.at_barrier:
                barrier_waiters += 1
                continue
            # Run this warp until it blocks or finishes.
            while not warp.done and not warp.at_barrier:
                if step_limit is not None and steps >= step_limit:
                    return steps
                if warp.step() is None:
                    break
                progressed = True
                steps += 1
                if watchdog is not None:
                    watchdog.tick(cta_index, warp.warp_index)
        if all(warp.done for warp in warps):
            return steps
        if not progressed:
            released = False
            if barrier_waiters:
                live = [w for w in warps if not w.done]
                if live and all(w.at_barrier for w in live):
                    for warp in live:
                        warp.at_barrier = False
                    released = True
            if not released:
                raise SimulationError(
                    f"{kernel.name}: functional deadlock in CTA "
                    f"{cta_index}")


def run_functional(kernel: Kernel, launch: LaunchConfig,
                   global_memory: MemorySpace,
                   resilience: Optional[ResilienceState] = None,
                   observer=None,
                   max_steps: int = 50_000_000,
                   watchdog: Optional[Watchdog] = None) -> ResilienceState:
    """Fast functional-only execution (no timing model).

    CTAs run one after another; warps within a CTA round-robin so barriers
    and shared memory behave.  Returns the resilience state (detection
    events); architectural results land in ``global_memory``.

    Exhausting ``max_steps`` — or any budget of an explicitly passed
    ``watchdog``, which then takes precedence over ``max_steps`` — raises
    :class:`~repro.errors.HangError`, so in-process livelock classifies
    as a ``hang``, not a generic crash.
    """
    kernel.validate()
    state = resilience if resilience is not None else ResilienceState()
    register_count = max(kernel.register_count(), 1)
    if watchdog is None:
        watchdog = Watchdog(WatchdogConfig(max_steps=max_steps),
                            name=kernel.name)
    watchdog.start()
    try:
        for cta_index in range(launch.grid_ctas):
            run_functional_cta(kernel, launch, cta_index, global_memory,
                               state, observer, watchdog, register_count)
    except KernelHalt:
        return state
    return state
