"""Hang watchdogs for the GPU simulator.

Control-flow corruption — a struck loop counter, a branch predicate built
from a corrupted value on unprotected hardware — turns into livelock, and
field studies show hangs dominate real GPU error-handling cost alongside
DUEs.  Before this module, a livelocked kernel crawled to the 50M-step
limit and surfaced as a generic :class:`~repro.errors.SimulationError`,
indistinguishable from a simulator bug.

A :class:`Watchdog` watches three budgets and raises
:class:`~repro.errors.HangError` (a clean ``HANG`` verdict) when any is
exhausted:

* ``max_steps`` — total functional steps across the launch (the old
  ``run_functional`` limit, now correctly binned);
* ``max_warp_steps`` — per-warp instruction budget, which catches a
  single spinning warp long before the global budget drains;
* ``deadline_s`` — a wall-clock deadline, checked every
  ``deadline_check_interval`` steps to keep the hot path cheap.

One watchdog instance spans one kernel attempt: the recovery ladder makes
a fresh one per kernel replay and clears a CTA's per-warp counters with
:meth:`Watchdog.clear_cta` before replaying that CTA.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import HangError, SimulationError


@dataclass(frozen=True)
class WatchdogConfig:
    """Budgets for one kernel attempt (None disables a budget)."""

    #: total functional steps across every warp of the launch
    max_steps: Optional[int] = 50_000_000
    #: per-warp instruction budget (catches one spinning warp early)
    max_warp_steps: Optional[int] = None
    #: wall-clock deadline per attempt, in seconds
    deadline_s: Optional[float] = None
    #: steps between wall-clock checks (amortizes the clock read)
    deadline_check_interval: int = 4096

    def __post_init__(self):
        for name in ("max_steps", "max_warp_steps"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise SimulationError(
                    f"{name} must be >= 1 (or None), got {value}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise SimulationError(
                f"deadline_s must be positive (or None), got "
                f"{self.deadline_s}")
        if self.deadline_check_interval < 1:
            raise SimulationError(
                f"deadline_check_interval must be >= 1, got "
                f"{self.deadline_check_interval}")


class Watchdog:
    """Step/deadline bookkeeping for one kernel attempt."""

    def __init__(self, config: Optional[WatchdogConfig] = None,
                 name: str = "kernel",
                 clock: Callable[[], float] = time.monotonic):
        self.config = config if config is not None else WatchdogConfig()
        self.name = name
        self.steps = 0
        self.warp_steps: Dict[Tuple[int, int], int] = {}
        self._clock = clock
        self._started: Optional[float] = None
        self._since_deadline_check = 0

    def start(self) -> None:
        """Arm the wall-clock deadline (idempotent)."""
        if self._started is None:
            self._started = self._clock()

    def clear_cta(self, cta_index: int) -> None:
        """Reset per-warp budgets of one CTA (before a CTA replay)."""
        for key in [key for key in self.warp_steps if key[0] == cta_index]:
            del self.warp_steps[key]

    def tick(self, cta_index: int, warp_index: int, count: int = 1) -> None:
        """Account ``count`` executed steps of one warp; raise on a hang."""
        config = self.config
        self.steps += count
        if config.max_steps is not None and self.steps > config.max_steps:
            raise HangError(
                f"{self.name}: exceeded {config.max_steps} functional "
                f"steps; runaway kernel?")
        if config.max_warp_steps is not None:
            key = (cta_index, warp_index)
            executed = self.warp_steps.get(key, 0) + count
            self.warp_steps[key] = executed
            if executed > config.max_warp_steps:
                raise HangError(
                    f"{self.name}: warp {warp_index} of CTA {cta_index} "
                    f"exceeded its {config.max_warp_steps}-instruction "
                    f"budget; livelock?")
        if config.deadline_s is not None:
            self._since_deadline_check += count
            if self._since_deadline_check >= config.deadline_check_interval:
                self._since_deadline_check = 0
                self.check_deadline()

    def check_deadline(self) -> None:
        """Raise when the wall-clock deadline has passed (if armed)."""
        deadline = self.config.deadline_s
        if deadline is None or self._started is None:
            return
        elapsed = self._clock() - self._started
        if elapsed > deadline:
            raise HangError(
                f"{self.name}: exceeded the {deadline:.1f}s wall-clock "
                f"deadline after {self.steps} steps ({elapsed:.1f}s)")
