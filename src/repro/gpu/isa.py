"""The SASS-like instruction set executed by the GPU simulator.

The ISA is a compact stand-in for the Pascal-era instruction set the paper
compiles to: 32-bit integer and FP32 arithmetic on single registers, FP64 on
even-aligned register pairs, predicated execution, explicit divergence
reconvergence annotations on branches, shared/global memory, warp shuffles,
barriers, and atomics.

Each opcode carries the metadata the rest of the stack needs:

* an execution-pipe class (for the timing model),
* a duplication class (for the resilience compiler passes: which
  instructions are duplication-eligible, which are prediction-eligible for
  each Swap-Predict organization, which end a duplication region).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError

#: number of threads per warp
WARP_SIZE = 32

#: the zero register (reads 0, writes discarded)
RZ = 255
#: the always-true predicate
PT = 7


class Pipe(enum.Enum):
    """Execution pipes of the SM timing model."""

    ALU = "alu"           # integer / logic / moves / predicates
    FMA32 = "fma32"       # fp32 add / mul / fma
    FMA64 = "fma64"       # fp64 add / mul / fma (half rate on the P100)
    SFU = "sfu"           # special functions: rcp, sqrt, conversions
    LSU = "lsu"           # global / shared loads and stores, atomics
    BRANCH = "branch"     # control flow, barriers, traps


class DupClass(enum.Enum):
    """How the resilience passes treat an opcode."""

    ELIGIBLE = "eligible"        # duplicated by every scheme
    MOVE = "move"                # move-propagation avoids duplication
    BOUNDARY = "boundary"        # checked-before: memory/control/atomics
    NEUTRAL = "neutral"          # no dataflow output to protect (NOP, BAR)


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode."""

    name: str
    pipe: Pipe
    latency: int
    initiation_interval: int
    dup_class: DupClass
    #: prediction kind for Swap-Predict ("addsub", "mad", "fxp",
    #: "fp-addsub", "fp-mad", or None when unpredictable)
    predict_kind: Optional[str] = None
    #: True for 64-bit operations on register pairs
    is_64bit: bool = False
    writes_dest: bool = True


def _spec(name, pipe, latency, ii, dup, predict=None, is_64bit=False,
          writes_dest=True):
    return OpSpec(name, pipe, latency, ii, dup, predict, is_64bit,
                  writes_dest)


#: every opcode in the ISA
OPCODES: Dict[str, OpSpec] = {spec.name: spec for spec in [
    # --- integer -------------------------------------------------------
    _spec("MOV", Pipe.ALU, 6, 1, DupClass.MOVE),
    _spec("IADD", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "addsub"),
    _spec("ISUB", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "addsub"),
    _spec("IMUL", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "mad"),
    _spec("IMAD", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "mad"),
    _spec("IMIN", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "fxp"),
    _spec("IMAX", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "fxp"),
    _spec("SHL", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "fxp"),
    _spec("SHR", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "fxp"),
    _spec("AND", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "fxp"),
    _spec("OR", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "fxp"),
    _spec("XOR", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "fxp"),
    _spec("NOT", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, "fxp"),
    # --- fp32 ----------------------------------------------------------
    _spec("FADD", Pipe.FMA32, 6, 1, DupClass.ELIGIBLE, "fp-addsub"),
    _spec("FSUB", Pipe.FMA32, 6, 1, DupClass.ELIGIBLE, "fp-addsub"),
    _spec("FMUL", Pipe.FMA32, 6, 1, DupClass.ELIGIBLE, "fp-mad"),
    _spec("FFMA", Pipe.FMA32, 6, 1, DupClass.ELIGIBLE, "fp-mad"),
    _spec("FMIN", Pipe.FMA32, 6, 1, DupClass.ELIGIBLE),
    _spec("FMAX", Pipe.FMA32, 6, 1, DupClass.ELIGIBLE),
    # --- fp64 (register pairs) -----------------------------------------
    _spec("DADD", Pipe.FMA64, 8, 2, DupClass.ELIGIBLE, "fp-addsub",
          is_64bit=True),
    _spec("DSUB", Pipe.FMA64, 8, 2, DupClass.ELIGIBLE, "fp-addsub",
          is_64bit=True),
    _spec("DMUL", Pipe.FMA64, 8, 2, DupClass.ELIGIBLE, "fp-mad",
          is_64bit=True),
    _spec("DFMA", Pipe.FMA64, 8, 2, DupClass.ELIGIBLE, "fp-mad",
          is_64bit=True),
    # --- special functions ----------------------------------------------
    _spec("FRCP", Pipe.SFU, 20, 4, DupClass.ELIGIBLE),
    _spec("DRCP", Pipe.SFU, 120, 4, DupClass.ELIGIBLE, is_64bit=True),
    _spec("FSQRT", Pipe.SFU, 20, 4, DupClass.ELIGIBLE),
    _spec("FEXP", Pipe.SFU, 20, 4, DupClass.ELIGIBLE),
    _spec("FLOG", Pipe.SFU, 20, 4, DupClass.ELIGIBLE),
    _spec("I2F", Pipe.SFU, 10, 2, DupClass.ELIGIBLE),
    _spec("F2I", Pipe.SFU, 10, 2, DupClass.ELIGIBLE),
    # --- predicates ------------------------------------------------------
    _spec("ISETP", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, writes_dest=False),
    _spec("FSETP", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, writes_dest=False),
    _spec("DSETP", Pipe.ALU, 6, 1, DupClass.ELIGIBLE, writes_dest=False),
    _spec("SEL", Pipe.ALU, 6, 1, DupClass.ELIGIBLE),
    # --- data movement / special registers ------------------------------
    _spec("S2R", Pipe.ALU, 6, 1, DupClass.MOVE),
    _spec("SHFL", Pipe.ALU, 8, 1, DupClass.BOUNDARY),
    # --- memory ----------------------------------------------------------
    _spec("LDG", Pipe.LSU, 350, 2, DupClass.BOUNDARY),
    _spec("STG", Pipe.LSU, 4, 2, DupClass.BOUNDARY, writes_dest=False),
    _spec("LDS", Pipe.LSU, 30, 1, DupClass.BOUNDARY),
    _spec("STS", Pipe.LSU, 4, 1, DupClass.BOUNDARY, writes_dest=False),
    _spec("ATOM", Pipe.LSU, 400, 4, DupClass.BOUNDARY),
    # --- control ----------------------------------------------------------
    _spec("BRA", Pipe.BRANCH, 6, 1, DupClass.BOUNDARY, writes_dest=False),
    _spec("BAR", Pipe.BRANCH, 6, 1, DupClass.NEUTRAL, writes_dest=False),
    _spec("EXIT", Pipe.BRANCH, 1, 1, DupClass.BOUNDARY, writes_dest=False),
    _spec("BPT", Pipe.BRANCH, 1, 1, DupClass.NEUTRAL, writes_dest=False),
    _spec("NOP", Pipe.ALU, 1, 1, DupClass.NEUTRAL, writes_dest=False),
]}

#: special register names readable via S2R
SPECIAL_REGISTERS = ("SR_TID", "SR_CTAID", "SR_NTID", "SR_NCTAID", "SR_LANE")

#: comparison operators for ISETP/FSETP/DSETP
COMPARE_OPS = ("LT", "LE", "EQ", "NE", "GE", "GT")


class OperandKind(enum.Enum):
    """The six operand shapes the toy ISA decodes."""

    REGISTER = "reg"
    REGISTER64 = "reg64"
    PREDICATE = "pred"
    IMMEDIATE = "imm"
    SPECIAL = "special"
    LABEL = "label"


@dataclass(frozen=True)
class Operand:
    """One instruction operand."""

    kind: OperandKind
    value: int = 0
    name: str = ""

    @staticmethod
    def reg(index: int) -> "Operand":
        """A 32-bit register operand; ``RZ`` reads as zero."""
        if not 0 <= index <= RZ:
            raise AssemblyError(f"register index {index} out of range")
        return Operand(OperandKind.REGISTER, index)

    @staticmethod
    def reg64(index: int) -> "Operand":
        """A 64-bit operand over the even-aligned pair (Rn, Rn+1)."""
        if index != RZ and (index % 2 or not 0 <= index < RZ - 1):
            raise AssemblyError(
                f"64-bit operands need an even register pair, got R{index}")
        return Operand(OperandKind.REGISTER64, index)

    @staticmethod
    def pred(index: int) -> "Operand":
        """A predicate-register operand; ``PT`` is constant true."""
        if not 0 <= index <= PT:
            raise AssemblyError(f"predicate index {index} out of range")
        return Operand(OperandKind.PREDICATE, index)

    @staticmethod
    def imm(value: int) -> "Operand":
        """An immediate operand (signed; wrapped to 32 bits at use)."""
        return Operand(OperandKind.IMMEDIATE, value)

    @staticmethod
    def special(name: str) -> "Operand":
        """A special-register operand (``SR_TID``, ``SR_CTAID``, ...)."""
        if name not in SPECIAL_REGISTERS:
            raise AssemblyError(f"unknown special register {name}")
        return Operand(OperandKind.SPECIAL, 0, name)

    @staticmethod
    def label(name: str) -> "Operand":
        """A branch-target label operand, resolved at assembly."""
        return Operand(OperandKind.LABEL, 0, name)

    @property
    def is_register(self) -> bool:
        """True for 32- and 64-bit register operands (not predicates)."""
        return self.kind in (OperandKind.REGISTER, OperandKind.REGISTER64)

    def registers(self) -> Tuple[int, ...]:
        """The physical 32-bit register indices this operand touches."""
        if self.kind is OperandKind.REGISTER:
            return () if self.value == RZ else (self.value,)
        if self.kind is OperandKind.REGISTER64:
            return () if self.value == RZ else (self.value, self.value + 1)
        return ()

    def __str__(self) -> str:
        if self.kind is OperandKind.REGISTER:
            return "RZ" if self.value == RZ else f"R{self.value}"
        if self.kind is OperandKind.REGISTER64:
            return "RZ" if self.value == RZ else f"RD{self.value}"
        if self.kind is OperandKind.PREDICATE:
            return "PT" if self.value == PT else f"P{self.value}"
        if self.kind is OperandKind.IMMEDIATE:
            return str(self.value)
        return self.name


@dataclass
class Instruction:
    """One decoded instruction.

    ``meta`` carries compiler-pass annotations: ``role`` tags instructions
    as "original", "shadow", "check", "sync", or "predicted"; ``swap_shadow``
    marks the 1-bit ISA flag for masked ECC-only writeback (Table II).
    """

    op: str
    dest: Optional[Operand] = None
    sources: List[Operand] = field(default_factory=list)
    predicate: Optional[int] = None
    predicate_negated: bool = False
    compare: Optional[str] = None
    target: Optional[str] = None
    reconverge: Optional[str] = None
    offset: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def spec(self) -> OpSpec:
        """The opcode's static description (pipe, latency, flags)."""
        return OPCODES[self.op]

    def source_registers(self) -> Tuple[int, ...]:
        """All 32-bit register indices read by the sources (cached)."""
        cached = self.__dict__.get("_src_regs")
        if cached is None:
            regs: List[int] = []
            for operand in self.sources:
                regs.extend(operand.registers())
            cached = self.__dict__["_src_regs"] = tuple(regs)
        return cached

    def dest_registers(self) -> Tuple[int, ...]:
        """The 32-bit register indices this instruction writes (cached)."""
        cached = self.__dict__.get("_dst_regs")
        if cached is None:
            if self.dest is None or not self.spec.writes_dest:
                cached = ()
            else:
                cached = self.dest.registers()
            self.__dict__["_dst_regs"] = cached
        return cached

    def copy(self) -> "Instruction":
        """A deep-enough copy for compiler passes to mutate safely."""
        return Instruction(
            op=self.op, dest=self.dest, sources=list(self.sources),
            predicate=self.predicate,
            predicate_negated=self.predicate_negated,
            compare=self.compare, target=self.target,
            reconverge=self.reconverge, offset=self.offset,
            meta=dict(self.meta))

    def __str__(self) -> str:
        parts = []
        if self.predicate is not None:
            bang = "!" if self.predicate_negated else ""
            name = "PT" if self.predicate == PT else f"P{self.predicate}"
            parts.append(f"@{bang}{name}")
        opname = self.op
        if self.compare:
            opname += f".{self.compare}"
        parts.append(opname)
        operands = []
        if self.dest is not None:
            operands.append(str(self.dest))
        operands.extend(str(source) for source in self.sources)
        if self.target:
            operands.append(self.target)
        if self.offset:
            operands.append(f"+{self.offset}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
