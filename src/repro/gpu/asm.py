"""A small text assembler for the SASS-like ISA.

Syntax by example::

    entry:
        S2R R0, SR_TID          // special register read
        IADD R1, R0, 16         // immediates allowed as trailing sources
        ISETP.LT P0, R1, R5     // compare writes a predicate
    @P0 BRA entry               // predicated backward branch (loop)
    @!P0 BRA skip, reconv=skip  // forward divergence: annotate reconverge
        FADD R2, R2, 1.5        // float literals for F ops
        LDG R3, [R1+4]          // word-addressed memory
        LDG.64 RD4, [R1]        // 64-bit load into the pair R4:R5
        DFMA RD6, RD4, RD8, RD10
        STG [R1], R3
        ATOM.ADD R7, [R1], R3
        SHFL.BFLY R9, R2, 16    // warp shuffle
        BAR                     // CTA barrier
    skip:
        EXIT

Comments run from ``//`` or ``#`` to end of line.  Addresses are in 32-bit
words.  ``RD<n>`` names the even-aligned 64-bit register pair n:n+1.
"""

from __future__ import annotations

import re
import struct
from typing import List, Optional, Tuple

from repro.errors import AssemblyError
from repro.gpu.isa import (COMPARE_OPS, OPCODES, PT, RZ, Instruction, Operand,
                           OperandKind)
from repro.gpu.program import Kernel, KernelWriter

_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.]*):$")
_MEM_RE = re.compile(r"^\[(R\d+|RZ|\d+)(?:\s*\+\s*(-?\d+))?\]$")

#: modifiers that select shuffle modes and atomic operations
SHFL_MODES = ("IDX", "BFLY", "UP", "DOWN")
ATOM_OPS = ("ADD", "MAX", "MIN", "EXCH")


def _parse_scalar(token: str, float_bits: Optional[int]) -> Operand:
    token = token.strip()
    if token == "RZ":
        return Operand.reg(RZ)
    if token == "PT":
        return Operand.pred(PT)
    if re.fullmatch(r"RD\d+", token):
        return Operand.reg64(int(token[2:]))
    if re.fullmatch(r"R\d+", token):
        return Operand.reg(int(token[1:]))
    if re.fullmatch(r"P\d+", token):
        return Operand.pred(int(token[1:]))
    if token.startswith("SR_"):
        return Operand.special(token)
    if re.fullmatch(r"-?0[xX][0-9a-fA-F]+|-?\d+", token):
        return Operand.imm(int(token, 0) & 0xFFFF_FFFF)
    if re.fullmatch(r"-?\d*\.\d+([eE]-?\d+)?|-?\d+[eE]-?\d+", token):
        if float_bits == 64:
            raise AssemblyError(
                "64-bit float immediates are not supported; load them")
        bits = struct.unpack("<I", struct.pack("<f", float(token)))[0]
        return Operand.imm(bits)
    raise AssemblyError(f"cannot parse operand {token!r}")


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside brackets."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def parse_instruction(line: str) -> Instruction:
    """Parse one (label-free, comment-free) instruction line."""
    predicate = None
    negated = False
    text = line.strip()
    match = re.match(r"^@(!?)(P\d+|PT)\s+(.*)$", text)
    if match:
        negated = match.group(1) == "!"
        pred_token = match.group(2)
        predicate = PT if pred_token == "PT" else int(pred_token[1:])
        text = match.group(3)

    pieces = text.split(None, 1)
    op_token = pieces[0]
    rest = pieces[1] if len(pieces) > 1 else ""
    modifiers = op_token.split(".")
    op = modifiers[0].upper()
    modifiers = [m.upper() for m in modifiers[1:]]
    if op not in OPCODES:
        raise AssemblyError(f"unknown opcode {op!r} in {line!r}")

    instruction = Instruction(op=op, predicate=predicate,
                              predicate_negated=negated)
    instruction.meta["modifiers"] = modifiers
    if op in ("ISETP", "FSETP", "DSETP"):
        compare = [m for m in modifiers if m in COMPARE_OPS]
        if len(compare) != 1:
            raise AssemblyError(f"{op} needs exactly one compare modifier")
        instruction.compare = compare[0]
    if op == "ATOM" and not any(m in ATOM_OPS for m in modifiers):
        raise AssemblyError("ATOM needs an operation modifier (.ADD etc.)")
    if op == "SHFL" and not any(m in SHFL_MODES for m in modifiers):
        raise AssemblyError("SHFL needs a mode modifier (.IDX/.BFLY/...)")

    float_bits = 32 if op.startswith("F") else (64 if op.startswith("D")
                                                else None)
    operands = _split_operands(rest)

    if op == "BRA":
        target, reconv = _parse_branch_operands(operands, line)
        instruction.target = target
        instruction.reconverge = reconv
        return instruction
    if op in ("BAR", "EXIT", "BPT", "NOP"):
        if operands:
            raise AssemblyError(f"{op} takes no operands")
        return instruction

    parsed: List[Operand] = []
    for token in operands:
        mem = _MEM_RE.match(token)
        if mem:
            base_token = mem.group(1)
            offset = int(mem.group(2) or 0)
            if base_token == "RZ":
                base = RZ
            elif base_token.startswith("R"):
                base = int(base_token[1:])
            else:
                # Immediate base address: [64] means RZ + 64.
                base = RZ
                offset += int(base_token)
            parsed.append(Operand.reg(base))
            instruction.offset = offset
            instruction.meta["has_memory_operand"] = True
        else:
            parsed.append(_parse_scalar(token, float_bits))

    writes_dest = OPCODES[op].writes_dest
    if op in ("STG", "STS"):
        # store: [address], value — no destination register.
        instruction.sources = parsed
    elif writes_dest or op in ("ISETP", "FSETP", "DSETP"):
        if not parsed:
            raise AssemblyError(f"{op} needs a destination")
        instruction.dest = parsed[0]
        instruction.sources = parsed[1:]
    else:
        instruction.sources = parsed
    _check_operand_shapes(instruction, line)
    return instruction


def _parse_branch_operands(operands: List[str],
                           line: str) -> Tuple[str, Optional[str]]:
    if not operands:
        raise AssemblyError(f"BRA needs a target: {line!r}")
    target = operands[0]
    reconv = None
    for extra in operands[1:]:
        key, __, value = extra.partition("=")
        if key.strip() == "reconv" and value:
            reconv = value.strip()
        else:
            raise AssemblyError(f"bad branch argument {extra!r}")
    return target, reconv


def _check_operand_shapes(instruction: Instruction, line: str) -> None:
    op = instruction.op
    counts = {
        "MOV": 1, "IADD": 2, "ISUB": 2, "IMUL": 2, "IMAD": 3,
        "IMIN": 2, "IMAX": 2, "SHL": 2, "SHR": 2, "AND": 2, "OR": 2,
        "XOR": 2, "NOT": 1, "FADD": 2, "FSUB": 2, "FMUL": 2, "FFMA": 3,
        "FMIN": 2, "FMAX": 2, "DADD": 2, "DSUB": 2, "DMUL": 2, "DFMA": 3,
        "FRCP": 1, "DRCP": 1, "FSQRT": 1, "FEXP": 1, "FLOG": 1, "I2F": 1,
        "F2I": 1, "ISETP": 2, "FSETP": 2, "DSETP": 2, "SEL": 3, "S2R": 1,
        "SHFL": 2, "LDG": 1, "LDS": 1, "STG": 2, "STS": 2, "ATOM": 2,
    }
    expected = counts.get(op)
    if expected is not None and len(instruction.sources) != expected:
        raise AssemblyError(
            f"{op} expects {expected} sources, got "
            f"{len(instruction.sources)}: {line!r}")
    if instruction.dest is not None and \
            instruction.dest.kind is OperandKind.IMMEDIATE:
        raise AssemblyError(f"destination cannot be immediate: {line!r}")


def assemble(name: str, source: str) -> Kernel:
    """Assemble kernel ``source`` text into a :class:`Kernel`."""
    writer = KernelWriter(name)
    for raw_line in source.splitlines():
        line = raw_line.split("//")[0].split("#")[0].strip()
        if not line:
            continue
        label = _LABEL_RE.match(line)
        if label:
            writer.place_label(label.group(1))
            continue
        writer.emit(parse_instruction(line))
    return writer.finish()
