"""The streaming multiprocessor timing model.

Each SM hosts the CTAs occupancy allows, issuing up to ``issue_width``
instructions per cycle from ready warps (greedy round-robin).  A warp can
issue when its source registers/predicates are ready (scoreboard) and its
target pipe's initiation interval has elapsed.  Global memory instructions
occupy the LSU in proportion to their coalescing transaction count and
complete after the load latency; barriers park warps until the whole CTA
arrives.

Writes to the same register from an instruction pair (Swap-ECC's original
and shadow) do not stall each other — the in-order pipeline retires them in
order — but any reader waits for the *later* writeback, which is exactly
the write-after-write dependence Section III-A describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.gpu.isa import OPCODES, Instruction, OperandKind, Pipe
from repro.gpu.memory import MemorySpace
from repro.gpu.program import Kernel, LaunchConfig
from repro.gpu.resilience import ResilienceState
from repro.gpu.timing import TimingParams
from repro.gpu.warp import Warp


@dataclass
class SmStats:
    """Issue and utilization counters for one SM."""

    cycles: int = 0
    issued: int = 0
    issued_by_pipe: Dict[str, int] = field(default_factory=dict)
    memory_transactions: int = 0
    idle_cycles: int = 0
    l1_hits: int = 0
    l1_misses: int = 0

    def count(self, pipe: Pipe) -> None:
        """Tally one issued instruction against its pipe."""
        self.issued += 1
        self.issued_by_pipe[pipe.value] = \
            self.issued_by_pipe.get(pipe.value, 0) + 1


class L1Cache:
    """A simple LRU cache of 128-byte global-memory lines."""

    def __init__(self, lines: int):
        self.capacity = lines
        self._lines: Dict[int, None] = {}

    def access(self, segment: int) -> bool:
        """Touch one line; returns True on hit."""
        if self.capacity <= 0:
            return False
        hit = segment in self._lines
        if hit:
            self._lines.pop(segment)
        elif len(self._lines) >= self.capacity:
            self._lines.pop(next(iter(self._lines)))
        self._lines[segment] = None
        return hit


class _Cta:
    """One resident CTA: its warps and shared memory."""

    def __init__(self, cta_index: int, warps: List[Warp]):
        self.cta_index = cta_index
        self.warps = warps

    @property
    def done(self) -> bool:
        return all(warp.done for warp in self.warps)

    def barrier_release(self) -> bool:
        """If every live warp is at the barrier, release them all."""
        for warp in self.warps:
            if not warp.done and not warp.at_barrier:
                return False
        for warp in self.warps:
            warp.at_barrier = False
        return True


class _Slot:
    """Scheduler state for one resident warp."""

    __slots__ = ("warp", "cta", "reg_ready", "pred_ready", "next_free")

    def __init__(self, warp: Warp, cta: _Cta):
        self.warp = warp
        self.cta = cta
        self.reg_ready: Dict[int, int] = {}
        self.pred_ready: Dict[int, int] = {}
        self.next_free = 0

    def ready_cycle(self, instruction: Instruction) -> int:
        """Earliest cycle this instruction's operands are all available."""
        ready = self.next_free
        for register in instruction.source_registers():
            ready = max(ready, self.reg_ready.get(register, 0))
        # Predicated execution reads the guard predicate; SEL reads one too.
        if instruction.predicate is not None:
            ready = max(ready,
                        self.pred_ready.get(instruction.predicate, 0))
        for operand in instruction.sources:
            if operand.kind is OperandKind.PREDICATE:
                ready = max(ready, self.pred_ready.get(operand.value, 0))
        # Write-after-write needs no issue stall: the in-order pipeline
        # retires same-register writes in order (Section III-A), so a
        # Swap-ECC shadow issues right behind its original.  Readers wait
        # for the *latest* in-flight write via the max() in _account.
        return ready


class StreamingMultiprocessor:
    """Executes a queue of CTAs with cycle-approximate timing."""

    def __init__(self, sm_index: int, params: TimingParams, kernel: Kernel,
                 launch: LaunchConfig, global_memory: MemorySpace,
                 resilience: ResilienceState, observer=None, watchdog=None):
        self.sm_index = sm_index
        self.params = params
        self.kernel = kernel
        self.launch = launch
        self.global_memory = global_memory
        self.resilience = resilience
        self.observer = observer
        self.watchdog = watchdog
        self.stats = SmStats()
        self.register_count = max(kernel.register_count(), 1)
        self.l1 = L1Cache(params.l1_lines)

    # ------------------------------------------------------------------
    def _make_cta(self, cta_index: int) -> _Cta:
        shared = None
        if self.launch.shared_words_per_cta:
            shared = MemorySpace(self.launch.shared_words_per_cta,
                                 name=f"shared.cta{cta_index}")
        warps = []
        threads_left = self.launch.threads_per_cta
        for warp_index in range(self.launch.warps_per_cta):
            count = min(32, threads_left)
            threads_left -= count
            warp = Warp(self.kernel, cta_index, warp_index, count,
                        self.launch.threads_per_cta, self.launch.grid_ctas,
                        self.register_count, self.global_memory, shared,
                        self.resilience)
            warp.observer = self.observer
            warps.append(warp)
        return _Cta(cta_index, warps)

    # ------------------------------------------------------------------
    def run(self, cta_indices: List[int]) -> int:
        """Run the given CTAs to completion; returns total cycles."""
        occupancy = self.params.occupancy(self.kernel, self.launch)
        pending = list(cta_indices)
        slots: List[_Slot] = []
        ctas: List[_Cta] = []
        pipe_free: Dict[Pipe, List[int]] = {
            pipe: [0] * self.params.pipe_units(pipe) for pipe in Pipe}
        cycle = 0
        rr_pointer = 0

        def admit():
            while pending and len(ctas) < occupancy.ctas_per_sm:
                cta = self._make_cta(pending.pop(0))
                ctas.append(cta)
                for warp in cta.warps:
                    slot = _Slot(warp, cta)
                    slot.next_free = cycle
                    slots.append(slot)

        admit()
        while slots or pending:
            issued = 0
            order = list(range(len(slots)))
            order = order[rr_pointer:] + order[:rr_pointer]
            for position in order:
                if issued >= self.params.issue_width:
                    break
                slot = slots[position]
                warp = slot.warp
                if warp.done or warp.at_barrier:
                    continue
                entry = warp.current_entry()
                if entry is None:
                    continue
                instruction = self.kernel.instructions[entry.pc]
                if slot.ready_cycle(instruction) > cycle:
                    continue
                pipe = instruction.spec.pipe
                if min(pipe_free[pipe]) > cycle:
                    continue
                info = warp.step()
                if info is None:
                    continue
                issued += 1
                if self.watchdog is not None:
                    self.watchdog.tick(slot.cta.cta_index, warp.warp_index)
                rr_pointer = (position + 1) % max(len(slots), 1)
                self._account(slot, instruction, info, pipe, pipe_free,
                              cycle)
                if info.barrier:
                    slot.cta.barrier_release()

            # Retire finished CTAs and admit new ones.
            finished = [cta for cta in ctas if cta.done]
            if finished:
                for cta in finished:
                    ctas.remove(cta)
                slots = [slot for slot in slots if not slot.warp.done]
                rr_pointer = 0
                admit()

            if not slots and not pending:
                break
            if issued:
                cycle += 1
            else:
                if self.watchdog is not None:
                    self.watchdog.check_deadline()
                cycle = self._skip_to_next_event(slots, pipe_free, cycle)
        self.stats.cycles = cycle
        return cycle

    # ------------------------------------------------------------------
    def _account(self, slot: _Slot, instruction: Instruction, info,
                 pipe: Pipe, pipe_free: Dict[Pipe, List[int]],
                 cycle: int) -> None:
        spec = instruction.spec
        interval = spec.initiation_interval
        latency = spec.latency
        if pipe is Pipe.LSU:
            transactions = max(1, info.transactions)
            interval = interval + self.params.lsu_cycles_per_transaction * \
                (transactions - 1)
            if info.segments:
                hits = sum(self.l1.access(segment)
                           for segment in info.segments)
                misses = len(info.segments) - hits
                self.stats.l1_hits += hits
                self.stats.l1_misses += misses
                if instruction.op in ("LDG", "ATOM") and misses == 0:
                    latency = self.params.l1_hit_latency
            latency = latency + 2 * (transactions - 1)
            self.stats.memory_transactions += transactions
        units = pipe_free[pipe]
        unit = min(range(len(units)), key=units.__getitem__)
        units[unit] = cycle + interval
        slot.next_free = cycle + 1
        for register in instruction.dest_registers():
            slot.reg_ready[register] = max(
                slot.reg_ready.get(register, 0), cycle + latency)
        if instruction.dest is not None and \
                instruction.dest.kind is OperandKind.PREDICATE:
            slot.pred_ready[instruction.dest.value] = cycle + latency
        self.stats.count(pipe)

    def _skip_to_next_event(self, slots: List[_Slot],
                            pipe_free: Dict[Pipe, List[int]],
                            cycle: int) -> int:
        """Nothing issued: jump to the earliest cycle something could."""
        candidates = []
        for slot in slots:
            warp = slot.warp
            if warp.done or warp.at_barrier:
                continue
            entry = warp.current_entry()
            if entry is None:
                continue
            instruction = self.kernel.instructions[entry.pc]
            ready = slot.ready_cycle(instruction)
            ready = max(ready, min(pipe_free[instruction.spec.pipe]))
            candidates.append(ready)
        if not candidates:
            barriers = [slot for slot in slots
                        if not slot.warp.done and slot.warp.at_barrier]
            if barriers:
                raise SimulationError(
                    f"{self.kernel.name}: deadlock — warps stuck at a "
                    f"barrier that can never release")
            return cycle
        earliest = min(candidates)
        if earliest <= cycle:
            # Should not happen; guard against infinite loops.
            return cycle + 1
        self.stats.idle_cycles += earliest - cycle
        return earliest
