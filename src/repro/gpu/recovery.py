"""Graceful-degradation recovery ladder over SwapCodes detection (Sec. VI).

Swap-ECC detects errors at register reads, before they can leak to
memory; that strict containment means re-execution is a complete recovery
story.  But whole-kernel re-runs are the *bluntest* rung: SEC-DED-DP
explicitly retains single-bit storage correction, and replay granularity
is the key lever on recovery overhead.  This module implements the full
ladder:

* **rung 0 — correct and continue**: single-bit storage errors decode as
  benign corrections (Figure 5's augmented reporting); execution never
  stops, the event lands in the scrub log, and no replay happens.
* **rung 1 — CTA replay**: a DUE/trap/hang halts the CTA; because
  register state is fresh at CTA launch and shared memory is per-CTA,
  restoring the pre-CTA global-memory snapshot and re-running just that
  CTA is an architectural checkpoint restart.
* **rung 2 — kernel replay**: today's scheme — restore the pristine
  input image and run the whole kernel again.
* **rung 3 — unrecoverable**: the ladder is exhausted; the report
  surfaces a DUE (or a persistent ``hang``) with full telemetry instead
  of looping forever.

A :class:`ContainmentAuditor` can ride along: at every detection it
replays the halted CTA fault-free for exactly the executed prefix and
diffs memory word for word, machine-checking the paper's claim that
detected errors never reach DRAM (:class:`ContainmentViolation` on any
divergence).

:func:`run_with_recovery` remains as the kernel-granularity compatibility
API; both entry points validate that ``make_state`` builds a *fresh*
:class:`~repro.gpu.resilience.ResilienceState` per attempt — reusing a
fired state would silently degrade to zero injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ContainmentViolation, HangError, SimulationError
from repro.gpu.device import run_functional, run_functional_cta
from repro.gpu.memory import MemorySpace
from repro.gpu.program import Kernel, LaunchConfig
from repro.gpu.resilience import DetectionEvent, ResilienceState
from repro.gpu.warp import KernelHalt
from repro.gpu.watchdog import Watchdog, WatchdogConfig

#: every terminal ladder outcome, in escalation order
LADDER_OUTCOMES = ("ok", "corrected", "cta_replayed", "kernel_replayed",
                   "due", "hang")


@dataclass
class RecoveryResult:
    """Outcome of a recovered execution."""

    memory: MemorySpace
    attempts: int
    detections: int

    @property
    def recovered(self) -> bool:
        """True when success took at least one detect-and-replay."""
        return self.detections > 0


@dataclass(frozen=True)
class LadderConfig:
    """Escalation budgets and watchdog thresholds for one ladder run."""

    #: replays of one CTA from its launch checkpoint (0 disables rung 1)
    max_cta_replays: int = 1
    #: whole-kernel re-executions (0 disables rung 2)
    max_kernel_replays: int = 2
    #: hang budgets applied to every kernel attempt
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)

    def __post_init__(self):
        if self.max_cta_replays < 0:
            raise SimulationError(
                f"max_cta_replays must be >= 0, got {self.max_cta_replays}")
        if self.max_kernel_replays < 0:
            raise SimulationError(
                f"max_kernel_replays must be >= 0, got "
                f"{self.max_kernel_replays}")


@dataclass
class LadderReport:
    """Telemetry of one laddered execution."""

    outcome: str
    #: final memory image (None when the ladder was exhausted)
    memory: Optional[MemorySpace]
    #: DUE/trap detection events across every attempt
    detections: int = 0
    #: rung-0 scrub log length (storage errors corrected in place)
    corrected_in_place: int = 0
    cta_replays: int = 0
    kernel_replays: int = 0
    #: watchdog verdicts across every attempt
    hangs: int = 0
    #: injected fault plans that actually struck
    faults_fired: int = 0
    #: instructions executed across all attempts
    total_instructions: int = 0
    #: instructions re-executed by rung-1/rung-2 replays (the overhead)
    replayed_instructions: int = 0
    #: containment audits performed (one per detection, auditor attached)
    audits: int = 0
    #: every detection/correction event, in execution order
    events: List[DetectionEvent] = field(default_factory=list)
    detail: str = ""

    @property
    def succeeded(self) -> bool:
        """The run finished with architecturally trusted memory."""
        return self.outcome in ("ok", "corrected", "cta_replayed",
                                "kernel_replayed")

    @property
    def recovered(self) -> bool:
        """A detected error was repaired (any rung below DUE)."""
        return self.outcome in ("corrected", "cta_replayed",
                                "kernel_replayed")


class ContainmentAuditor:
    """Machine-checks read-time containment at every detection.

    On each DUE/trap the ladder hands over the pre-CTA memory snapshot,
    the step count the halted CTA executed, and the post-detection
    memory.  The auditor replays the same CTA fault-free from the
    snapshot for exactly that prefix (functional scheduling is
    deterministic, and a detected fault only ever perturbed *register*
    values before the halting read) and diffs global memory word for
    word.  Any divergence means a corrupted value reached DRAM before
    detection — the failure SwapCodes' containment claim rules out — and
    raises :class:`~repro.errors.ContainmentViolation`.
    """

    def __init__(self, kernel: Kernel, launch: LaunchConfig,
                 raise_on_violation: bool = True,
                 on_violation: Optional[Callable] = None):
        self.kernel = kernel
        self.launch = launch
        self.raise_on_violation = raise_on_violation
        #: optional sink called with the :class:`ContainmentViolation`
        #: *before* it is raised (or recorded, when raising is off) —
        #: how bundle-capture hooks observe violations without wrapping
        #: every ladder call site
        self.on_violation = on_violation
        self.audits = 0
        self.violations: List[tuple] = []
        self._register_count = max(kernel.register_count(), 1)

    def audit(self, cta_index: int, snapshot_words: np.ndarray, steps: int,
              memory: MemorySpace, detail: str = "") -> List[int]:
        """Diff post-detection ``memory`` against the clean prefix replay.

        Returns the diverging word addresses (empty when containment
        held); raises on divergence unless ``raise_on_violation`` is off.
        """
        self.audits += 1
        clean = MemorySpace(len(memory), name=memory.name)
        clean.words[:] = snapshot_words
        run_functional_cta(self.kernel, self.launch, cta_index, clean,
                           ResilienceState(), step_limit=steps,
                           register_count=self._register_count)
        diverged = [int(address) for address in
                    np.nonzero(clean.words != memory.words)[0]]
        if diverged:
            self.violations.append((cta_index, diverged))
            suffix = f" ({detail})" if detail else ""
            violation = ContainmentViolation(
                f"{self.kernel.name}: CTA {cta_index} leaked "
                f"{len(diverged)} corrupted words to memory before "
                f"detection (first at address {diverged[0]}){suffix}",
                context={"cta": cta_index, "address": diverged[0],
                         "leaked_words": len(diverged),
                         "kernel": self.kernel.name})
            if self.on_violation is not None:
                try:
                    self.on_violation(violation)
                except Exception:
                    pass  # a capture sink must never mask the violation
            if self.raise_on_violation:
                raise violation
        return diverged


def _validate_fresh_state(state, issued: List[ResilienceState]) -> None:
    """Refuse states that would silently degrade to zero injection."""
    if not isinstance(state, ResilienceState):
        raise SimulationError(
            f"make_state must return a ResilienceState, got "
            f"{type(state).__name__}")
    if any(state is prior for prior in issued):
        raise SimulationError(
            "make_state returned the same ResilienceState twice; each "
            "attempt needs a fresh state — a fired fault plan's "
            "per-state latch would otherwise silently disable injection")
    if state.fault_fired or state.events:
        raise SimulationError(
            "make_state returned a state that already ran (its fault "
            "fired or it holds recorded events); build a fresh "
            "ResilienceState per attempt")


class _StateSupply:
    """Fresh validated states from ``make_state``, with event folding."""

    def __init__(self, make_state: Callable[[], ResilienceState],
                 report: LadderReport):
        self._make_state = make_state
        self._report = report
        self.issued: List[ResilienceState] = []
        self.current: Optional[ResilienceState] = None
        self._folded = 0

    def fresh(self) -> ResilienceState:
        self.fold()
        state = self._make_state()
        _validate_fresh_state(state, self.issued)
        self.issued.append(state)
        self.current = state
        self._folded = 0
        return state

    def fold(self) -> None:
        """Move the current state's new events into the report."""
        if self.current is None:
            return
        new = self.current.events[self._folded:]
        self._folded = len(self.current.events)
        self._report.events.extend(new)
        self._report.corrected_in_place += sum(
            1 for event in new if event.kind == "corrected")
        self._report.detections += sum(
            1 for event in new if event.kind in ("due", "trap"))
        self._report.faults_fired = sum(
            1 for state in self.issued if state.fault_fired)


def _image_copy(checkpoint: MemorySpace) -> MemorySpace:
    memory = MemorySpace(len(checkpoint), name=checkpoint.name)
    memory.words[:] = checkpoint.words
    return memory


def _attempt_kernel(kernel: Kernel, launch: LaunchConfig,
                    memory: MemorySpace, supply: _StateSupply,
                    config: LadderConfig,
                    auditor: Optional[ContainmentAuditor],
                    report: LadderReport,
                    replaying_kernel: bool) -> Optional[str]:
    """One kernel-granularity attempt with rung-1 CTA replays inside.

    Returns None on success or the failure kind ("due", "trap", "hang",
    "crash") once this attempt's CTA-replay budget is exhausted.
    """
    register_count = max(kernel.register_count(), 1)
    watchdog = Watchdog(config.watchdog, name=kernel.name)
    watchdog.start()
    state = supply.fresh()
    keep_snapshots = auditor is not None or config.max_cta_replays > 0
    for cta_index in range(launch.grid_ctas):
        snapshot = memory.words.copy() if keep_snapshots else None
        cta_attempts = 0
        while True:
            before = watchdog.steps
            failure = None
            detail = ""
            try:
                run_functional_cta(kernel, launch, cta_index, memory,
                                   state, watchdog=watchdog,
                                   register_count=register_count)
            except KernelHalt as halt:
                failure = "trap" if halt.reason == "trap" else "due"
                detail = halt.reason
            except HangError as exc:
                failure = "hang"
                detail = str(exc)
                report.hangs += 1
            except SimulationError as exc:
                failure = "crash"
                detail = str(exc)
            executed = watchdog.steps - before
            report.total_instructions += executed
            if replaying_kernel or cta_attempts > 0:
                report.replayed_instructions += executed
            supply.fold()
            if failure is None:
                break  # CTA completed; move on
            report.detail = detail
            if failure in ("due", "trap") and auditor is not None \
                    and snapshot is not None:
                auditor.audit(cta_index, snapshot, executed, memory,
                              detail=detail)
                report.audits = auditor.audits
            if snapshot is None or cta_attempts >= config.max_cta_replays:
                return failure  # escalate to rung 2
            cta_attempts += 1
            report.cta_replays += 1
            memory.words[:] = snapshot
            watchdog.clear_cta(cta_index)
            state = supply.fresh()
    return None


def run_with_ladder(kernel: Kernel, launch: LaunchConfig,
                    checkpoint: MemorySpace,
                    make_state: Callable[[], ResilienceState],
                    config: Optional[LadderConfig] = None,
                    auditor: Optional[ContainmentAuditor] = None
                    ) -> LadderReport:
    """Run ``kernel`` under the full graceful-degradation ladder.

    ``checkpoint`` is the pristine input image (never mutated).
    ``make_state`` builds one fresh resilience state per attempt segment
    — the initial run, every rung-1 CTA replay, and every rung-2 kernel
    replay each consume one; a state that already fired raises
    :class:`~repro.errors.SimulationError` instead of silently running
    without injection.  Attach a :class:`ContainmentAuditor` to prove
    every detection halted before memory diverged.

    Never raises on unrecoverable errors: the report's ``outcome`` lands
    on ``"due"`` (or ``"hang"`` for persistent livelock) with the full
    telemetry — detections, scrub log, per-rung replay counts, and
    replayed-instruction overhead.
    """
    config = config if config is not None else LadderConfig()
    kernel.validate()
    report = LadderReport(outcome="due", memory=None)
    supply = _StateSupply(make_state, report)
    last_failure = None
    for attempt in range(config.max_kernel_replays + 1):
        replaying_kernel = attempt > 0
        if replaying_kernel:
            report.kernel_replays += 1
        memory = _image_copy(checkpoint)
        failure = _attempt_kernel(kernel, launch, memory, supply, config,
                                  auditor, report, replaying_kernel)
        if failure is None:
            report.memory = memory
            if report.kernel_replays:
                report.outcome = "kernel_replayed"
            elif report.cta_replays:
                report.outcome = "cta_replayed"
            elif report.corrected_in_place:
                report.outcome = "corrected"
            else:
                report.outcome = "ok"
            return report
        last_failure = failure
    report.outcome = "hang" if last_failure == "hang" else "due"
    return report


def run_with_recovery(kernel: Kernel, launch: LaunchConfig,
                      checkpoint: MemorySpace,
                      make_state: Callable[[], ResilienceState],
                      max_attempts: int = 3) -> RecoveryResult:
    """Run ``kernel``, re-executing from ``checkpoint`` on detected errors.

    The kernel-granularity compatibility rung (rung 2 only):
    ``checkpoint`` is the pristine input image (never mutated); each
    attempt runs on a fresh copy.  ``make_state`` must build a *fresh*
    resilience state per attempt — a transient fault plan fires on the
    first attempt only because its ``fault_fired`` latch is per state.
    Returning a state that already fired, or the same state twice, would
    silently degrade to zero injection, so it raises
    :class:`SimulationError` instead.  Also raises when every attempt was
    cut short.  For CTA-granularity replay, in-place correction, and
    hang handling, use :func:`run_with_ladder`.
    """
    if max_attempts < 1:
        raise SimulationError(
            f"{kernel.name}: max_attempts must be at least 1, "
            f"got {max_attempts}")
    detections = 0
    issued: List[ResilienceState] = []
    for attempt in range(1, max_attempts + 1):
        memory = _image_copy(checkpoint)
        state = make_state()
        _validate_fresh_state(state, issued)
        issued.append(state)
        run_functional(kernel, launch, memory, state)
        if not state.detected:
            return RecoveryResult(memory, attempt, detections)
        detections += 1
    raise SimulationError(
        f"{kernel.name}: still detecting errors after {max_attempts} "
        f"attempts ({detections} detections)")
