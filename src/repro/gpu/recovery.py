"""Checkpoint-restart recovery on top of SwapCodes detection (Section VI).

Swap-ECC detects errors at register reads, before they can leak to memory;
that strict containment means kernel-granularity re-execution is a
sufficient recovery scheme: restore the input image and run again.  This
module implements exactly that and is exercised by the end-to-end tests —
a transient fault costs one retry and the final output is correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.gpu.device import run_functional
from repro.gpu.memory import MemorySpace
from repro.gpu.program import Kernel, LaunchConfig
from repro.gpu.resilience import ResilienceState


@dataclass
class RecoveryResult:
    """Outcome of a recovered execution."""

    memory: MemorySpace
    attempts: int
    detections: int

    @property
    def recovered(self) -> bool:
        return self.detections > 0


def run_with_recovery(kernel: Kernel, launch: LaunchConfig,
                      checkpoint: MemorySpace,
                      make_state: Callable[[], ResilienceState],
                      max_attempts: int = 3) -> RecoveryResult:
    """Run ``kernel``, re-executing from ``checkpoint`` on detected errors.

    ``checkpoint`` is the pristine input image (never mutated); each
    attempt runs on a fresh copy.  ``make_state`` builds the resilience
    state per attempt — a transient fault plan fires on the first attempt
    only (its ``fault_fired`` latch is per state, so pass a fresh plan per
    attempt if repeated strikes are wanted).  Raises
    :class:`SimulationError` when every attempt was cut short.
    """
    if max_attempts < 1:
        raise SimulationError(
            f"{kernel.name}: max_attempts must be at least 1, "
            f"got {max_attempts}")
    detections = 0
    for attempt in range(1, max_attempts + 1):
        memory = MemorySpace(len(checkpoint), name=checkpoint.name)
        memory.words[:] = checkpoint.words
        state = make_state()
        run_functional(kernel, launch, memory, state)
        if not state.detected:
            return RecoveryResult(memory, attempt, detections)
        detections += 1
    raise SimulationError(
        f"{kernel.name}: still detecting errors after {max_attempts} "
        f"attempts ({detections} detections)")
