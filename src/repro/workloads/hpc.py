"""HPC workloads: the SNAP transport-sweep proxy and CUDA-SDK matrixMul.

SNAP exercises fp64 with warp shuffles (which is why inter-thread
duplication rejects it, Section V) and enough live registers that software
duplication costs occupancy.  matrixMul uses 1024-thread CTAs (doubling
them is impossible, the paper's other inter-thread failure).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import MemorySpace
from repro.gpu.program import LaunchConfig
from repro.workloads.base import Workload, WorkloadInstance, register

F32 = np.float32


class Snap(Workload):
    """SNAP proxy: per-angle fp64 source iteration plus warp flux reduction."""

    name = "snap"
    paper_name = "SNAP"
    description = "fp64 discrete-ordinates sweep proxy with SHFL reduction"

    GROUPS = 6

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        warps = self._scaled(64, scale, minimum=4)
        threads = 128
        ctas = max(1, warps * 32 // threads)
        count = ctas * threads
        groups = self.GROUPS
        mu_base = 16
        q_base = mu_base + count * 2
        s_base = q_base + count * groups * 2
        psi_base = s_base + count * groups * 2
        acc2_base = psi_base + count * 2
        flux_base = acc2_base + count * 2
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0       // t
            SHL R4, R3, 1
            LDG.64 RD6, [R4+{mu_base}]     // mu
            MOV RD8, RZ               // psi
            MOV RD30, RZ              // second moment accumulator
            LDG.64 RD34, [R4+{mu_base}]    // per-angle weight (live all loop)
            LDG.64 RD36, [R4+{mu_base}]    // quadrature weight (live)
            MOV R5, 0                 // g
        gloop:
            IMAD R11, R5, {count}, R3      // group-major: coalesced
            SHL R12, R11, 1
            LDG.64 RD14, [R12+{q_base}]    // q[g,t]
            LDG.64 RD16, [R12+{s_base}]    // 1/(sigt[g,t] + mu), precomputed
            DFMA RD18, RD6, RD8, RD14      // q + mu*psi
            DMUL RD8, RD18, RD16           // psi'
            DFMA RD30, RD8, RD8, RD30      // accumulate psi^2
            IADD R5, R5, 1
            ISETP.LT P0, R5, {groups}
        @P0 BRA gloop
            DMUL RD30, RD30, RD34          // weight the second moment
            DMUL RD30, RD30, RD36
            SHL R22, R3, 1
            STG.64 [R22+{psi_base}], RD8
            STG.64 [R22+{acc2_base}], RD30
            // butterfly all-reduce of psi across the warp
            MOV RD24, RD8
            SHFL.BFLY R26, R24, 16
            SHFL.BFLY R27, R25, 16
            DADD RD24, RD24, RD26
            SHFL.BFLY R26, R24, 8
            SHFL.BFLY R27, R25, 8
            DADD RD24, RD24, RD26
            SHFL.BFLY R26, R24, 4
            SHFL.BFLY R27, R25, 4
            DADD RD24, RD24, RD26
            SHFL.BFLY R26, R24, 2
            SHFL.BFLY R27, R25, 2
            DADD RD24, RD24, RD26
            SHFL.BFLY R26, R24, 1
            SHFL.BFLY R27, R25, 1
            DADD RD24, RD24, RD26
            S2R R28, SR_LANE
            ISETP.NE P0, R28, 0
        @P0 BRA fdone, reconv=fdone
            SHR R29, R3, 5            // warp id
            SHL R29, R29, 1
            STG.64 [R29+{flux_base}], RD24
        fdone:
            EXIT
        """
        kernel = self._assemble("snap", source)
        launch = LaunchConfig(ctas, threads)
        total_warps = count // 32
        memory = MemorySpace(flux_base + total_warps * 2, name="snap")
        rng = np.random.default_rng(seed)
        mu = rng.uniform(0.1, 1.0, count)
        q = rng.uniform(0.0, 1.0, (count, groups))
        sigt = rng.uniform(0.5, 2.0, (count, groups))
        # The sweep's denominators are group constants: precompute their
        # reciprocals host-side (as SNAP itself does per source iteration).
        rcp = 1.0 / (sigt + mu[:, None])
        memory.write_f64(mu_base, mu)
        memory.write_f64(q_base, q.T.reshape(-1))
        memory.write_f64(s_base, rcp.T.reshape(-1))

        def reference_psi():
            psi = np.zeros(count)
            acc2 = np.zeros(count)
            rcp = 1.0 / (sigt + mu[:, None])
            for g in range(groups):
                numer = q[:, g] + mu * psi
                psi = numer * rcp[:, g]
                acc2 = psi * psi + acc2
            acc2 = (acc2 * mu) * mu
            return psi, acc2

        def verify(mem: MemorySpace) -> bool:
            psi, acc2 = reference_psi()
            got_psi = mem.read_f64(psi_base, count)
            if not np.allclose(got_psi, psi, rtol=1e-12):
                return False
            if not np.allclose(mem.read_f64(acc2_base, count), acc2,
                               rtol=1e-12):
                return False
            flux = psi.reshape(-1, 32).copy()
            for offset in (16, 8, 4, 2, 1):
                lanes = np.arange(32)
                flux = flux + flux[:, lanes ^ offset]
            got_flux = mem.read_f64(flux_base, total_warps)
            return np.allclose(got_flux, flux[:, 0], rtol=1e-9)

        return WorkloadInstance("snap", kernel, launch, memory, verify)


class MatMul(Workload):
    """matrixMul: shared-memory tiled fp32 GEMM with 1024-thread CTAs."""

    name = "matmul"
    paper_name = "MatMul"
    description = "fp32 tiled matrix multiply (CUDA SDK style)"

    TILE = 32

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        tile = self.TILE
        k_dim = tile * max(1, int(round(2 * scale)))
        ctas = 2
        rows = ctas * tile
        a_base = 16
        b_base = a_base + rows * k_dim
        c_base = b_base + k_dim * tile
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            SHR R2, R0, 5             // i (row within tile)
            AND R3, R0, 31            // j (column)
            MOV R4, 0                 // accA
            MOV R11, 0                // accB
            MOV R5, 0                 // phase
        ploop:
            // load A[i, ph*32 + j] into shared[0..1023]
            IMAD R6, R1, {tile}, R2   // global row
            IMAD R7, R6, {k_dim}, R3
            SHL R8, R5, 5
            IADD R7, R7, R8
            LDG R9, [R7+{a_base}]
            STS [R0], R9
            // load B[ph*32 + i, j] into shared[1024..2047]
            IADD R8, R8, R2
            IMAD R7, R8, {tile}, R3
            LDG R9, [R7+{b_base}]
            STS [R0+{tile * tile}], R9
            BAR
            SHL R6, R2, 5             // running A index = i*32
            MOV R8, R3                // running B index = j
            MOV R10, 0                // k within tile
        kloop:
            LDS R7, [R6]              // A[i,k]
            LDS R9, [R8+{tile * tile}]     // B[k,j]
            FFMA R4, R7, R9, R4
            LDS R7, [R6+1]            // A[i,k+1]
            LDS R9, [R8+{tile + tile * tile}]  // B[k+1,j]
            FFMA R11, R7, R9, R11
            IADD R6, R6, 2
            IADD R8, R8, {2 * tile}
            IADD R10, R10, 2
            ISETP.LT P0, R10, {tile}
        @P0 BRA kloop
            BAR
            IADD R5, R5, 1
            ISETP.LT P0, R5, {k_dim // tile}
        @P0 BRA ploop
            FADD R4, R4, R11
            IMAD R6, R1, {tile}, R2
            IMAD R7, R6, {tile}, R3
            STG [R7+{c_base}], R4
            EXIT
        """
        kernel = self._assemble("matmul", source)
        launch = LaunchConfig(ctas, tile * tile,
                              shared_words_per_cta=2 * tile * tile)
        memory = MemorySpace(c_base + rows * tile, name="matmul")
        rng = np.random.default_rng(seed)
        a = rng.uniform(-1, 1, (rows, k_dim)).astype(F32)
        b = rng.uniform(-1, 1, (k_dim, tile)).astype(F32)
        memory.write_f32(a_base, a.reshape(-1))
        memory.write_f32(b_base, b.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            acc_a = np.zeros((rows, tile), dtype=F32)
            acc_b = np.zeros((rows, tile), dtype=F32)
            for k in range(0, k_dim, 2):
                acc_a = (a[:, k:k + 1] * b[k:k + 1, :] + acc_a).astype(F32)
                acc_b = (a[:, k + 1:k + 2] * b[k + 1:k + 2, :] +
                         acc_b).astype(F32)
            acc = (acc_a + acc_b).astype(F32)
            got = mem.read_f32(c_base, rows * tile).reshape(rows, tile)
            return np.array_equal(got, acc)

        return WorkloadInstance("matmul", kernel, launch, memory, verify)


register(Snap())
register(MatMul())
