"""Integer / control-heavy Rodinia-like workloads: b+tree, mummergpu,
needle, bfs, pathfinder.

These are the programs whose SW-Dup cost is dominated by issue pressure and
checking code rather than arithmetic throughput — b+tree shows the paper's
worst software-duplication slowdown, and needle/pathfinder sit at the
checking-heavy end of the Figure 13 ordering.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import MemorySpace
from repro.gpu.program import LaunchConfig
from repro.workloads.base import Workload, WorkloadInstance, register


class BTree(Workload):
    """b+tree: 8-ary search-tree lookups (IMAD/compare issue-bound)."""

    name = "btree"
    paper_name = "b+tree"
    description = "integer 8-ary tree search with branchless key counting"

    FANOUT = 8
    DEPTH = 4

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        queries = self._scaled(1536, scale, minimum=128, multiple=128)
        fanout, depth = self.FANOUT, self.DEPTH
        node_count = (fanout ** (depth + 1) - 1) // (fanout - 1)
        k_base = 16
        q_base = k_base + node_count * fanout
        o_base = q_base + queries
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            IADD R4, R3, {q_base}
            LDG R5, [R4]              // query key
            MOV R6, 0                 // node
            MOV R7, 0                 // level
            MOV R8, 1                 // constant one
        lloop:
            SHL R9, R6, 3             // node*8
            MOV R10, 0                // count
            MOV R11, 0                // c
        cloop:
            IADD R12, R9, R11
            LDG R13, [R12+{k_base}]
            ISETP.LE P0, R13, R5
            SEL R14, R8, RZ, P0
            IADD R10, R10, R14
            IADD R11, R11, 1
            ISETP.LT P0, R11, {fanout}
        @P0 BRA cloop
            IMAD R6, R6, {fanout}, R10
            IADD R6, R6, 1            // child node
            IADD R7, R7, 1
            ISETP.LT P0, R7, {depth}
        @P0 BRA lloop
            IADD R15, R3, {o_base}
            STG [R15], R6
            EXIT
        """
        kernel = self._assemble("btree", source)
        launch = LaunchConfig(queries // 128, 128)
        memory = MemorySpace(o_base + queries, name="btree")
        rng = np.random.default_rng(seed)
        keys = np.sort(
            rng.integers(0, 1 << 20, size=(node_count, fanout)),
            axis=1).astype(np.uint32)
        query_keys = rng.integers(0, 1 << 20, size=queries).astype(
            np.uint32)
        memory.write_words(k_base, keys.reshape(-1))
        memory.write_words(q_base, query_keys)

        def verify(mem: MemorySpace) -> bool:
            want = np.zeros(queries, dtype=np.uint32)
            for index, query in enumerate(query_keys):
                node = 0
                for __ in range(depth):
                    count = int(
                        (keys[node].astype(np.int64) <=
                         int(query)).sum())
                    node = node * fanout + count + 1
                want[index] = node
            return np.array_equal(mem.read_words(o_base, queries), want)

        return WorkloadInstance("btree", kernel, launch, memory, verify)


class Mummer(Workload):
    """mummergpu: prefix matching with divergent early loop exits."""

    name = "mummer"
    paper_name = "mumm"
    description = "integer string prefix matching with early-exit divergence"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        queries = self._scaled(1024, scale, minimum=128, multiple=128)
        query_len = 24
        ref_len = queries + query_len
        r_base = 16
        q_base = r_base + ref_len
        o_base = q_base + queries * query_len
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0       // t: match offset & query index
            IMAD R4, R3, {query_len}, RZ
            IADD R4, R4, {q_base}     // query base
            IADD R5, R3, {r_base}     // reference base + offset
            MOV R6, 0                 // i
            MOV R7, 0                 // match length
        mloop:
            IADD R8, R5, R6
            LDG R9, [R8]
            IADD R10, R4, R6
            LDG R11, [R10]
            ISETP.NE P0, R9, R11
        @P0 BRA mdone, reconv=mdone
            IADD R7, R7, 1
            IADD R6, R6, 1
            ISETP.LT P0, R6, {query_len}
        @P0 BRA mloop
        mdone:
            IADD R12, R3, {o_base}
            STG [R12], R7
            EXIT
        """
        kernel = self._assemble("mummer", source)
        launch = LaunchConfig(queries // 128, 128)
        memory = MemorySpace(o_base + queries, name="mummer")
        rng = np.random.default_rng(seed)
        reference = rng.integers(0, 4, size=ref_len).astype(np.uint32)
        query_data = np.zeros((queries, query_len), dtype=np.uint32)
        for q in range(queries):
            # Seed each query with a random-length true prefix match.
            prefix = int(rng.integers(0, query_len + 1))
            query_data[q, :prefix] = reference[q:q + prefix]
            query_data[q, prefix:] = rng.integers(
                4, 8, size=query_len - prefix)
        memory.write_words(r_base, reference)
        memory.write_words(q_base, query_data.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            want = np.zeros(queries, dtype=np.uint32)
            for q in range(queries):
                length = 0
                while length < query_len and \
                        reference[q + length] == query_data[q, length]:
                    length += 1
                want[q] = length
            return np.array_equal(mem.read_words(o_base, queries), want)

        return WorkloadInstance("mummer", kernel, launch, memory, verify)


class Needle(Workload):
    """needle: Needleman-Wunsch anti-diagonal DP in shared memory."""

    name = "needle"
    paper_name = "needle"
    description = "integer sequence-alignment DP with per-diagonal barriers"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        width = 64            # columns (threads per CTA)
        height = 32           # rows
        tiles = self._scaled(12, scale)
        penalty = 2
        stride = width + 1
        shared_words = (height + 1) * stride
        s_base = 16           # similarity matrices, one per tile
        o_base = s_base + tiles * height * width
        source = f"""
            S2R R0, SR_TID            // j (column)
            S2R R1, SR_CTAID
            // init shared borders: row -1 and column -1
            IMUL R2, R0, -{penalty}
            STS [R0+1], R2            // S[-1][j] = -(j+1)*p ... filled below
            MOV R3, 0                 // i
        binit:
            IMUL R4, R3, {stride}
            IMAD R5, R3, -{penalty}, RZ
            ISETP.NE P0, R0, 0
        @P0 BRA bskip, reconv=bskip
            STS [R4], R5              // S[i-1][-1] = -i*p (thread 0 only)
        bskip:
            IADD R3, R3, 1
            ISETP.LE P0, R3, {height}
        @P0 BRA binit
            IMAD R6, R0, -{penalty}, RZ
            IADD R6, R6, -{penalty}   // -(j+1)*p
            STS [R0+1], R6
            BAR
            MOV R7, 0                 // d (diagonal)
        dloop:
            ISUB R8, R7, R0           // i = d - j
            ISETP.LT P0, R8, 0
        @P0 BRA dnext, reconv=dnext
            ISETP.GE P0, R8, {height}
        @P0 BRA dnext, reconv=dnext
            // score = max(diag + sim, up - p, left - p)
            IMUL R9, R8, {stride}     // row i-1 base (shared row index i)
            IADD R10, R9, R0          // S[i-1][j-1]
            LDS R11, [R10]
            IMAD R12, R8, {width}, R0
            IMAD R13, R1, {height * width}, R12
            LDG R14, [R13+{s_base}]   // sim[i][j]
            IADD R11, R11, R14
            LDS R15, [R10+1]          // S[i-1][j]
            IADD R15, R15, -{penalty}
            IMAX R11, R11, R15
            IADD R16, R9, {stride}    // row i base
            IADD R16, R16, R0         // S[i][j-1]
            LDS R17, [R16]
            IADD R17, R17, -{penalty}
            IMAX R11, R11, R17
            STS [R16+1], R11          // S[i][j]
        dnext:
            BAR
            IADD R7, R7, 1
            ISETP.LT P0, R7, {height + width - 1}
        @P0 BRA dloop
            // write back this thread's column
            MOV R18, 0
        wloop:
            IMUL R19, R18, {stride}
            IADD R19, R19, {stride}
            IADD R19, R19, R0
            LDS R20, [R19+1]
            IMAD R21, R18, {width}, R0
            IMAD R22, R1, {height * width}, R21
            STG [R22+{o_base}], R20
            IADD R18, R18, 1
            ISETP.LT P0, R18, {height}
        @P0 BRA wloop
            EXIT
        """
        kernel = self._assemble("needle", source)
        launch = LaunchConfig(tiles, width,
                              shared_words_per_cta=shared_words)
        memory = MemorySpace(o_base + tiles * height * width,
                             name="needle")
        rng = np.random.default_rng(seed)
        sim = rng.integers(-3, 4, size=(tiles, height, width)).astype(
            np.int32)
        memory.write_i32(s_base, sim.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            got = mem.read_i32(o_base, tiles * height * width).reshape(
                tiles, height, width)
            for tile in range(tiles):
                score = np.zeros((height + 1, width + 1), dtype=np.int64)
                score[0, :] = -penalty * np.arange(width + 1)
                score[:, 0] = -penalty * np.arange(height + 1)
                for i in range(1, height + 1):
                    for j in range(1, width + 1):
                        score[i, j] = max(
                            score[i - 1, j - 1] + sim[tile, i - 1, j - 1],
                            score[i - 1, j] - penalty,
                            score[i, j - 1] - penalty)
                if not np.array_equal(got[tile],
                                      score[1:, 1:].astype(np.int32)):
                    return False
            return True

        return WorkloadInstance("needle", kernel, launch, memory, verify)


class Bfs(Workload):
    """bfs: level-synchronous breadth-first search (memory/divergence)."""

    name = "bfs"
    paper_name = "bfs"
    description = "level-synchronous BFS over a CSR graph"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        nodes = 256
        graphs = self._scaled(8, scale)
        degree = 4
        levels = 6
        infinity = 9999
        #: per-graph region: offsets, edge targets, levels
        graph_words = (nodes + 1) + nodes * degree + nodes
        base = 16
        off_off = 0
        edge_off = nodes + 1
        level_off = edge_off + nodes * degree
        source = f"""
            S2R R0, SR_TID            // node id within this CTA's graph
            S2R R1, SR_CTAID
            IMAD R12, R1, {graph_words}, {base}   // graph base address
            MOV R13, R12
            IADD R13, R13, {level_off}            // levels base
            MOV R1, 0                 // current level l
        lloop:
            IADD R2, R0, R13
            LDG R3, [R2]
            ISETP.NE P0, R3, R1
        @P0 BRA lnext, reconv=lnext
            IADD R4, R0, R12
            LDG R5, [R4+{off_off}]    // edge start
            LDG R6, [R4+{off_off + 1}]
            IADD R7, R1, 1            // l + 1
        eloop:
            ISETP.GE P1, R5, R6
        @P1 BRA edone, reconv=edone
            IADD R8, R5, R12
            LDG R9, [R8+{edge_off}]   // neighbour
            IADD R10, R9, R13
            LDG R11, [R10]
            ISETP.LE P2, R11, R7
        @P2 BRA noupd, reconv=noupd
            STG [R10], R7
        noupd:
            IADD R5, R5, 1
            BRA eloop
        edone:
        lnext:
            BAR
            IADD R1, R1, 1
            ISETP.LT P0, R1, {levels}
        @P0 BRA lloop
            EXIT
        """
        kernel = self._assemble("bfs", source)
        launch = LaunchConfig(graphs, nodes)
        memory = MemorySpace(base + graphs * graph_words, name="bfs")
        rng = np.random.default_rng(seed)
        all_targets = []
        for g in range(graphs):
            targets = rng.integers(0, nodes, size=(nodes, degree)).astype(
                np.uint32)
            all_targets.append(targets)
            offsets = (np.arange(nodes + 1) * degree).astype(np.uint32)
            level_init = np.full(nodes, infinity, dtype=np.uint32)
            level_init[0] = 0
            gbase = base + g * graph_words
            memory.write_words(gbase + off_off, offsets)
            memory.write_words(gbase + edge_off, targets.reshape(-1))
            memory.write_words(gbase + level_off, level_init)

        def verify(mem: MemorySpace) -> bool:
            for g in range(graphs):
                targets = all_targets[g]
                want = np.full(nodes, infinity, dtype=np.int64)
                want[0] = 0
                frontier = [0]
                for level in range(levels):
                    nxt = []
                    for node in frontier:
                        for neighbour in targets[node]:
                            if want[neighbour] > level + 1:
                                want[neighbour] = level + 1
                                nxt.append(int(neighbour))
                    frontier = nxt
                gbase = base + g * graph_words
                got = mem.read_words(gbase + level_off, nodes).astype(
                    np.int64)
                if not np.array_equal(got, want):
                    return False
            return True

        return WorkloadInstance("bfs", kernel, launch, memory, verify)


class Pathfinder(Workload):
    """pathfinder: row-by-row dynamic programming with IMIN chains."""

    name = "pathfinder"
    paper_name = "pathf"
    description = "integer grid DP: cost + min of three upper neighbours"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        cols = 128
        rows = self._scaled(8, scale, minimum=3)
        strips = self._scaled(8, scale)
        big = 1 << 20
        w_base = 16
        o_base = w_base + strips * rows * cols
        shared_words = 2 * (cols + 2)
        source = f"""
            S2R R0, SR_TID            // j (column)
            S2R R1, SR_CTAID          // strip
            // prev row = weights row 0; borders = big
            IMAD R2, R1, {rows * cols}, R0
            LDG R3, [R2+{w_base}]
            STS [R0+1], R3
            ISETP.NE P0, R0, 0
        @P0 BRA binit, reconv=binit
            MOV R4, {big}
            STS [0], R4
            STS [{cols + 1}], R4
            STS [{cols + 2}], R4
            STS [{2 * cols + 3}], R4
        binit:
            BAR
            MOV R5, 1                 // row i
        rloop:
            LDS R6, [R0]              // prev[j-1]
            LDS R7, [R0+1]            // prev[j]
            LDS R8, [R0+2]            // prev[j+1]
            IMIN R6, R6, R7
            IMIN R6, R6, R8
            IMAD R9, R5, {cols}, R0
            IMAD R10, R1, {rows * cols}, R9
            LDG R11, [R10+{w_base}]
            IADD R12, R6, R11
            STS [R0+{cols + 3}], R12  // cur[j]
            BAR
            LDS R13, [R0+{cols + 3}]
            STS [R0+1], R13           // prev[j] = cur[j]
            BAR
            IADD R5, R5, 1
            ISETP.LT P0, R5, {rows}
        @P0 BRA rloop
            IMAD R14, R1, {cols}, R0
            STG [R14+{o_base}], R13
            EXIT
        """
        kernel = self._assemble("pathfinder", source)
        launch = LaunchConfig(strips, cols,
                              shared_words_per_cta=shared_words)
        memory = MemorySpace(o_base + strips * cols, name="pathfinder")
        rng = np.random.default_rng(seed)
        weights = rng.integers(0, 10, size=(strips, rows, cols)).astype(
            np.uint32)
        memory.write_words(w_base, weights.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            for strip in range(strips):
                prev = weights[strip, 0].astype(np.int64)
                for i in range(1, rows):
                    padded = np.concatenate(([big], prev, [big]))
                    best = np.minimum(
                        np.minimum(padded[:-2], padded[1:-1]), padded[2:])
                    prev = best + weights[strip, i]
                got = mem.read_words(o_base + strip * cols, cols).astype(
                    np.int64)
                if not np.array_equal(got, prev):
                    return False
            return True

        return WorkloadInstance("pathfinder", kernel, launch, memory,
                                verify)


register(BTree())
register(Mummer())
register(Needle())
register(Bfs())
register(Pathfinder())
