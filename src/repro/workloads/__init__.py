"""The evaluated workloads: 13 Rodinia-like kernels, SNAP, matrixMul."""

from repro.workloads.base import (ALL_ORDER, MICRO_ORDER, RODINIA_ORDER,
                                  WORKLOADS, Workload, WorkloadInstance,
                                  get_workload, register)
from repro.workloads import rodinia_fp  # noqa: F401  (registers workloads)
from repro.workloads import rodinia_int  # noqa: F401
from repro.workloads import hpc  # noqa: F401
from repro.workloads import micro  # noqa: F401

__all__ = [
    "ALL_ORDER", "MICRO_ORDER", "RODINIA_ORDER", "WORKLOADS", "Workload",
    "WorkloadInstance", "get_workload", "register",
]
