"""Micro workloads for simulator benchmarking (not in the paper set).

These are deliberately tiny kernels — a few dozen dynamic instructions
per thread — that expose the simulator's *per-trial overhead floor*
rather than any paper workload's behaviour.  ``BENCH_sim.json`` uses
them for its campaign-throughput headline row (the analogue of the
codec bench's small ``fxp-add-32`` gate unit), and the test suite uses
them where a fast real kernel beats a synthetic fixture.

They register under :data:`~repro.workloads.base.MICRO_ORDER`, not
``ALL_ORDER``: figure-driven studies must keep sweeping exactly the
paper's 15 programs.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import MemorySpace
from repro.gpu.program import LaunchConfig
from repro.workloads.base import Workload, WorkloadInstance, register

F32 = np.float32


class Saxpy(Workload):
    """Straight-line fp32 FMA stream: the batched executor's best case."""

    name = "saxpy"
    paper_name = "saxpy"
    description = "fp32 a*x+y stream micro-kernel (bench floor)"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        threads = self._scaled(64, scale, minimum=32, multiple=32)
        x_base = 0
        a_base = x_base + threads
        y_base = a_base + threads
        out_base = y_base + threads
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            LDG R4, [R3+{x_base}]
            LDG R5, [R3+{a_base}]
            LDG R6, [R3+{y_base}]
            FFMA R7, R5, R4, R6
            FMUL R8, R7, R4
            FADD R9, R8, R5
            FFMA R10, R9, R7, R4
            STG [R3+{out_base}], R10
            EXIT
        """
        kernel = self._assemble("saxpy", source)
        launch = LaunchConfig(1, threads)
        memory = MemorySpace(out_base + threads, name="saxpy")
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1.0, 1.0, threads).astype(F32)
        a = rng.uniform(-1.0, 1.0, threads).astype(F32)
        y = rng.uniform(-1.0, 1.0, threads).astype(F32)
        memory.write_f32(x_base, x)
        memory.write_f32(a_base, a)
        memory.write_f32(y_base, y)

        def verify(mem: MemorySpace) -> bool:
            t = a * x + y
            u = t * x
            v = u + a
            w = v * t + x
            return np.array_equal(mem.read_f32(out_base, threads), w)

        return WorkloadInstance("saxpy", kernel, launch, memory, verify)


class FxpStream(Workload):
    """Short integer loop: ALU mix with a uniform backward branch."""

    name = "fxp-stream"
    paper_name = "fxp-stream"
    description = "integer multiply-accumulate loop micro-kernel"

    ROUNDS = 4

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        threads = self._scaled(64, scale, minimum=32, multiple=32)
        rounds = self.ROUNDS
        x_base = 0
        out_base = x_base + threads
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            LDG R4, [R3+{x_base}]
            MOV R5, 1
            MOV R6, 0
        loop:
            IMAD R5, R5, R4, R3
            XOR R7, R5, R4
            SHL R8, R7, 3
            IADD R5, R5, R8
            IADD R6, R6, 1
            ISETP.LT P0, R6, {rounds}
        @P0 BRA loop
            STG [R3+{out_base}], R5
            EXIT
        """
        kernel = self._assemble("fxp-stream", source)
        launch = LaunchConfig(1, threads)
        memory = MemorySpace(out_base + threads, name="fxp-stream")
        rng = np.random.default_rng(seed)
        x = rng.integers(1, 1 << 16, threads).astype(np.uint32)
        memory.write_words(x_base, x)

        def verify(mem: MemorySpace) -> bool:
            tid = np.arange(threads, dtype=np.uint32)
            acc = np.ones(threads, dtype=np.uint32)
            for _ in range(rounds):
                acc = acc * x + tid
                mixed = acc ^ x
                acc = acc + (mixed << np.uint32(3))
            return np.array_equal(mem.read_words(out_base, threads), acc)

        return WorkloadInstance("fxp-stream", kernel, launch, memory,
                                verify)


register(Saxpy())
register(FxpStream())
