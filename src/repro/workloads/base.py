"""Workload infrastructure: build, run, verify.

Each workload is a hand-written kernel in the toy ISA whose algorithmic
structure and instruction mix mirror its paper counterpart (Rodinia 2.3,
SNAP, CUDA-SDK matrixMul).  A workload instance bundles the assembled
kernel, launch geometry, an initialized memory image, and a verifier that
recomputes the result on the host.

Workload kernels follow two conventions the compiler passes rely on:
predicates P4-P6 are reserved for instrumentation, and forward divergent
branches carry explicit ``reconv=`` annotations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

import numpy as np

from repro.errors import WorkloadError
from repro.gpu.asm import assemble
from repro.gpu.memory import MemorySpace
from repro.gpu.program import Kernel, LaunchConfig


@dataclass
class WorkloadInstance:
    """One runnable configuration of a workload."""

    name: str
    kernel: Kernel
    launch: LaunchConfig
    memory: MemorySpace
    verify: Callable[[MemorySpace], bool]

    def fresh_memory(self) -> MemorySpace:
        """A pristine copy of the input image (runs mutate memory)."""
        copy = MemorySpace(len(self.memory), name=self.memory.name)
        copy.words[:] = self.memory.words
        return copy


class Workload(abc.ABC):
    """A paper workload: knows how to build instances of itself."""

    #: registry key ("lavamd", "bfs", ...)
    name: str = ""
    #: label used in the paper's figures ("lavaMD", "bfs", ...)
    paper_name: str = ""
    #: one-line description of what the kernel computes
    description: str = ""

    @abc.abstractmethod
    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        """Construct a verified instance; ``scale`` grows the problem."""

    @staticmethod
    def _assemble(name: str, source: str) -> Kernel:
        return assemble(name, source)

    @staticmethod
    def _scaled(value: int, scale: float, minimum: int = 1,
                multiple: int = 1) -> int:
        scaled = max(minimum, int(round(value * scale)))
        if multiple > 1:
            scaled = max(multiple, (scaled // multiple) * multiple)
        return scaled


#: registry filled by the workload modules at import time
WORKLOADS: Dict[str, Workload] = {}

#: Rodinia programs in Figure 12/13 order (sorted by checking bloat)
RODINIA_ORDER = ("lavamd", "backprop", "kmeans", "lud", "gaussian",
                 "btree", "mummer", "hotspot", "heartwall", "needle",
                 "bfs", "pathfinder", "srad_v2")

#: every evaluated program (Rodinia + SNAP + matrixMul)
ALL_ORDER = RODINIA_ORDER + ("snap", "matmul")

#: benchmarking micro-kernels (registered, but NOT part of the paper's
#: evaluated set — figure studies sweep ALL_ORDER only)
MICRO_ORDER = ("saxpy", "fxp-stream")


def register(workload: Workload) -> Workload:
    if workload.name in WORKLOADS:
        raise WorkloadError(f"duplicate workload {workload.name!r}")
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    if name not in WORKLOADS:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}")
    return WORKLOADS[name]


def integers(rng: np.random.Generator, count: int, low: int = 0,
             high: int = 1 << 16) -> np.ndarray:
    return rng.integers(low, high, size=count, dtype=np.int64).astype(
        np.uint32)


def floats32(rng: np.random.Generator, count: int, low: float = -1.0,
             high: float = 1.0) -> np.ndarray:
    return rng.uniform(low, high, size=count).astype(np.float32)


def floats64(rng: np.random.Generator, count: int, low: float = -1.0,
             high: float = 1.0) -> np.ndarray:
    return rng.uniform(low, high, size=count)
