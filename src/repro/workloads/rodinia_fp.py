"""Floating-point Rodinia-like workloads: lavaMD, backprop, kmeans,
gaussian, lud, hotspot, heartwall, srad_v2.

Each kernel mirrors the algorithmic core and instruction mix of its
Rodinia 2.3 counterpart; the verifier recomputes the result on the host
with the same operation order so results match bit-for-bit (fp32/fp64 in
the simulator are IEEE numpy arithmetic).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.memory import MemorySpace
from repro.gpu.program import LaunchConfig
from repro.workloads.base import (Workload, WorkloadInstance, register)

F32 = np.float32


class LavaMd(Workload):
    """lavaMD: fp64 particle-interaction kernel (DFMA-throughput bound).

    Each CTA is a box of particles; every thread accumulates a pairwise
    interaction term against all particles of the box from shared memory.
    The inner loop is ~10 fp64 operations per 4 shared loads, which is why
    duplication hurts most here (the half-rate fp64 pipe saturates) and why
    only floating-point MAD prediction rescues it (Figure 16).
    """

    name = "lavamd"
    paper_name = "lavaMD"
    description = "fp64 pairwise particle interactions within boxes"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        boxes = self._scaled(12, scale)
        ppb = 64  # particles per box (threads per CTA)
        pos_base = 16
        out_base = pos_base + boxes * ppb * 8
        total_words = out_base + boxes * ppb * 2
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            SHL R4, R3, 3
            IADD R4, R4, {pos_base}
            LDG.64 RD6, [R4]
            LDG.64 RD8, [R4+2]
            LDG.64 RD10, [R4+4]
            LDG.64 RD12, [R4+6]
            SHL R5, R0, 3
            STS.64 [R5], RD6
            STS.64 [R5+2], RD8
            STS.64 [R5+4], RD10
            STS.64 [R5+6], RD12
            BAR
            LDG.64 RD14, [0]          // -1.0
            MOV RD16, RZ              // acc (r^4 terms)
            MOV RD36, RZ              // acc2 (q*r^2 terms)
            MOV R28, 0                // j
        jloop:
            SHL R29, R28, 3
            LDS.64 RD18, [R29]
            LDS.64 RD20, [R29+2]
            LDS.64 RD22, [R29+4]
            LDS.64 RD24, [R29+6]
            DFMA RD26, RD18, RD14, RD6
            DMUL RD30, RD26, RD26
            DFMA RD26, RD20, RD14, RD8
            DFMA RD30, RD26, RD26, RD30
            DFMA RD26, RD22, RD14, RD10
            DFMA RD30, RD26, RD26, RD30
            DMUL RD32, RD30, RD30
            DMUL RD34, RD30, RD24
            DADD RD16, RD16, RD32
            DADD RD36, RD36, RD34
            IADD R28, R28, 1
            ISETP.LT P0, R28, {ppb}
        @P0 BRA jloop
            DADD RD16, RD16, RD36
            SHL R4, R3, 1
            IADD R4, R4, {out_base}
            STG.64 [R4], RD16
            EXIT
        """
        kernel = self._assemble("lavamd", source)
        launch = LaunchConfig(boxes, ppb, shared_words_per_cta=ppb * 8)
        memory = MemorySpace(total_words, name="lavamd")
        rng = np.random.default_rng(seed)
        positions = rng.uniform(-1.0, 1.0, size=(boxes * ppb, 4))
        memory.write_f64(0, [-1.0])
        memory.write_f64(pos_base, positions.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            got = mem.read_f64(out_base, boxes * ppb)
            for box in range(boxes):
                part = positions[box * ppb:(box + 1) * ppb]
                x, y, z, q = (part[:, 0], part[:, 1], part[:, 2],
                              part[:, 3])
                acc = np.zeros(ppb)
                acc2 = np.zeros(ppb)
                for j in range(ppb):
                    dx = x[j] * -1.0 + x
                    r2 = dx * dx
                    dy = y[j] * -1.0 + y
                    r2 = dy * dy + r2
                    dz = z[j] * -1.0 + z
                    r2 = dz * dz + r2
                    acc = acc + r2 * r2
                    acc2 = acc2 + r2 * q[j]
                want = acc + acc2
                slice_got = got[box * ppb:(box + 1) * ppb]
                if not np.allclose(slice_got, want, rtol=1e-12, atol=1e-12):
                    return False
            return True

        return WorkloadInstance("lavamd", kernel, launch, memory, verify)


class Backprop(Workload):
    """backprop: fp32 dense layer forward pass with sigmoid activation."""

    name = "backprop"
    paper_name = "bprop"
    description = "fp32 weighted-sum layer with sigmoid activation"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        inputs = 48
        outputs = self._scaled(1536, scale, minimum=128, multiple=128)
        in_base = 16
        w_base = in_base + inputs
        out_base = w_base + inputs * outputs
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            MOV R4, 0                 // accA
            MOV R12, 0                // accB
            MOV R5, 0
            IADD R6, R3, {w_base}
        iloop:
            IADD R7, R5, {in_base}
            LDG R8, [R7]
            LDG R9, [R6]
            FFMA R4, R8, R9, R4
            LDG R13, [R7+1]
            IADD R6, R6, {outputs}
            LDG R14, [R6]
            FFMA R12, R13, R14, R12
            IADD R6, R6, {outputs}
            IADD R5, R5, 2
            ISETP.LT P0, R5, {inputs}
        @P0 BRA iloop
            FADD R4, R4, R12
            FSUB R10, RZ, R4
            FEXP R10, R10
            FADD R10, R10, 1.0
            FRCP R10, R10
            IADD R11, R3, {out_base}
            STG [R11], R10
            EXIT
        """
        kernel = self._assemble("backprop", source)
        launch = LaunchConfig(outputs // 128, 128)
        memory = MemorySpace(out_base + outputs, name="backprop")
        rng = np.random.default_rng(seed)
        in_vec = rng.uniform(-1, 1, inputs).astype(F32)
        weights = rng.uniform(-1, 1, (inputs, outputs)).astype(F32)
        memory.write_f32(in_base, in_vec)
        memory.write_f32(w_base, weights.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            acc_a = np.zeros(outputs, dtype=F32)
            acc_b = np.zeros(outputs, dtype=F32)
            for i in range(0, inputs, 2):
                acc_a = in_vec[i] * weights[i] + acc_a
                acc_b = in_vec[i + 1] * weights[i + 1] + acc_b
            acc = (acc_a + acc_b).astype(F32)
            t = (F32(0) - acc).astype(F32)
            t = np.exp(t).astype(F32)
            t = (t + F32(1)).astype(F32)
            want = (F32(1) / t).astype(F32)
            got = mem.read_f32(out_base, outputs)
            return np.array_equal(got, want)

        return WorkloadInstance("backprop", kernel, launch, memory, verify)


class Kmeans(Workload):
    """kmeans: fp32 nearest-centroid assignment (distance FFMA loops)."""

    name = "kmeans"
    paper_name = "kmeans"
    description = "fp32 point-to-centroid distances and argmin assignment"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        points = self._scaled(1536, scale, minimum=128, multiple=128)
        dims = 8
        clusters = 5
        p_base = 16
        c_base = p_base + points * dims
        a_base = c_base + clusters * dims
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            MOV R4, 0
            MOV R5, 2139095039        // +FLT_MAX
            MOV R6, 0
        kloop:
            MOV R7, 0                 // distA
            MOV R15, 0                // distB
            MOV R8, 0
        dloop:
            IMAD R9, R8, {points}, R3
            IADD R9, R9, {p_base}
            LDG R10, [R9]
            IMAD R11, R4, {dims}, R8
            IADD R11, R11, {c_base}
            LDG R12, [R11]
            FSUB R13, R10, R12
            FFMA R7, R13, R13, R7
            IADD R9, R9, {points}
            LDG R10, [R9]
            LDG R12, [R11+1]
            FSUB R16, R10, R12
            FFMA R15, R16, R16, R15
            IADD R8, R8, 2
            ISETP.LT P0, R8, {dims}
        @P0 BRA dloop
            FADD R7, R7, R15
            FSETP.LT P1, R7, R5
        @P1 MOV R5, R7
        @P1 MOV R6, R4
            IADD R4, R4, 1
            ISETP.LT P0, R4, {clusters}
        @P0 BRA kloop
            IADD R14, R3, {a_base}
            STG [R14], R6
            EXIT
        """
        kernel = self._assemble("kmeans", source)
        launch = LaunchConfig(points // 128, 128)
        memory = MemorySpace(a_base + points, name="kmeans")
        rng = np.random.default_rng(seed)
        data = rng.uniform(-2, 2, (dims, points)).astype(F32)
        centroids = rng.uniform(-2, 2, (clusters, dims)).astype(F32)
        memory.write_f32(p_base, data.reshape(-1))
        memory.write_f32(c_base, centroids.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            best = np.full(points, np.finfo(F32).max, dtype=F32)
            assign = np.zeros(points, dtype=np.uint32)
            for k in range(clusters):
                dist_a = np.zeros(points, dtype=F32)
                dist_b = np.zeros(points, dtype=F32)
                for d in range(0, dims, 2):
                    diff = (data[d] - centroids[k, d]).astype(F32)
                    dist_a = (diff * diff + dist_a).astype(F32)
                    diff = (data[d + 1] - centroids[k, d + 1]).astype(F32)
                    dist_b = (diff * diff + dist_b).astype(F32)
                dist = (dist_a + dist_b).astype(F32)
                better = dist < best
                best[better] = dist[better]
                assign[better] = k
            got = mem.read_words(a_base, points)
            return np.array_equal(got, assign)

        return WorkloadInstance("kmeans", kernel, launch, memory, verify)


class Gaussian(Workload):
    """gaussian: one elimination step (memory-bound, 2 flops / 4 accesses)."""

    name = "gaussian"
    paper_name = "gauss"
    description = "fp32 Gaussian-elimination row update (Fan2 kernel)"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        size = 32
        rows = self._scaled(63, scale, minimum=7)
        work = rows * size
        ctas = (work + 127) // 128
        a_base = 16
        m_base = a_base + (rows + 1) * size
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            ISETP.GE P0, R3, {work}
        @P0 BRA done, reconv=done
            SHR R4, R3, 5
            IADD R4, R4, 1
            AND R5, R3, 31
            IMAD R6, R4, {size}, R5
            IADD R7, R6, {a_base}
            LDG R8, [R7]
            IADD R9, R5, {a_base}
            LDG R10, [R9]
            IADD R11, R4, {m_base}
            LDG R12, [R11]
            FMUL R13, R12, R10
            FSUB R14, R8, R13
            STG [R7], R14
        done:
            EXIT
        """
        kernel = self._assemble("gaussian", source)
        launch = LaunchConfig(ctas, 128)
        memory = MemorySpace(m_base + rows + 1, name="gaussian")
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(-1, 1, ((rows + 1), size)).astype(F32)
        multipliers = rng.uniform(-1, 1, rows + 1).astype(F32)
        memory.write_f32(a_base, matrix.reshape(-1))
        memory.write_f32(m_base, multipliers)

        def verify(mem: MemorySpace) -> bool:
            got = mem.read_f32(a_base, (rows + 1) * size).reshape(
                rows + 1, size)
            want = matrix.copy()
            for i in range(1, rows + 1):
                t = (multipliers[i] * matrix[0]).astype(F32)
                want[i] = (matrix[i] - t).astype(F32)
            return np.array_equal(got, want)

        return WorkloadInstance("gaussian", kernel, launch, memory, verify)


class Lud(Workload):
    """lud: blocked LU internal update with shared-memory tiles."""

    name = "lud"
    paper_name = "lud"
    description = "fp32 tile update A -= L @ U with shared tiles"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        tile = 16
        blocks = self._scaled(12, scale)
        words_per_block = tile * tile
        l_base = 16
        u_base = l_base + blocks * words_per_block
        a_base = u_base + blocks * words_per_block
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            IADD R4, R3, {l_base}
            LDG R5, [R4]
            STS [R0], R5
            IADD R4, R3, {u_base}
            LDG R5, [R4]
            STS [R0+{tile * tile}], R5
            BAR
            IADD R4, R3, {a_base}
            LDG R6, [R4]
            MOV R17, 0                // accumulated subtrahend (B)
            SHR R7, R0, 4             // i
            AND R8, R0, 15            // j
            SHL R9, R7, 4             // i*16 (L row base)
            MOV R10, 0                // k
        kloop:
            IADD R11, R9, R10
            LDS R12, [R11]            // L[i,k]
            SHL R13, R10, 4
            IADD R13, R13, R8
            LDS R14, [R13+{tile * tile}]   // U[k,j]
            FMUL R15, R12, R14
            FSUB R6, R6, R15
            LDS R12, [R11+1]          // L[i,k+1]
            LDS R14, [R13+{tile + tile * tile}]  // U[k+1,j]
            FFMA R17, R12, R14, R17
            IADD R10, R10, 2
            ISETP.LT P0, R10, {tile}
        @P0 BRA kloop
            FSUB R6, R6, R17
            STG [R4], R6
            EXIT
        """
        kernel = self._assemble("lud", source)
        launch = LaunchConfig(blocks, tile * tile,
                              shared_words_per_cta=2 * tile * tile)
        memory = MemorySpace(a_base + blocks * words_per_block, name="lud")
        rng = np.random.default_rng(seed)
        l_tiles = rng.uniform(-1, 1, (blocks, tile, tile)).astype(F32)
        u_tiles = rng.uniform(-1, 1, (blocks, tile, tile)).astype(F32)
        a_tiles = rng.uniform(-1, 1, (blocks, tile, tile)).astype(F32)
        memory.write_f32(l_base, l_tiles.reshape(-1))
        memory.write_f32(u_base, u_tiles.reshape(-1))
        memory.write_f32(a_base, a_tiles.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            got = mem.read_f32(a_base, blocks * words_per_block).reshape(
                blocks, tile, tile)
            for block in range(blocks):
                acc = a_tiles[block].copy()
                acc_b = np.zeros((tile, tile), dtype=F32)
                for k in range(0, tile, 2):
                    t = (l_tiles[block][:, k:k + 1] *
                         u_tiles[block][k:k + 1, :]).astype(F32)
                    acc = (acc - t).astype(F32)
                    t = (l_tiles[block][:, k + 1:k + 2] *
                         u_tiles[block][k + 1:k + 2, :]).astype(F32)
                    acc_b = (t + acc_b).astype(F32)
                acc = (acc - acc_b).astype(F32)
                if not np.array_equal(got[block], acc):
                    return False
            return True

        return WorkloadInstance("lud", kernel, launch, memory, verify)


class Hotspot(Workload):
    """hotspot: fp32 five-point thermal stencil."""

    name = "hotspot"
    paper_name = "hspot"
    description = "fp32 2-D thermal stencil with power term"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        cols = 64
        rows = self._scaled(32, scale, minimum=2) * 2
        cells = rows * cols
        t_base = 16
        p_base = t_base + cells
        o_base = p_base + cells
        ctas = cells // 128
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            SHR R4, R3, 6             // r
            AND R5, R3, 63            // c
            IADD R6, R3, {t_base}
            LDG R7, [R6]              // t
            IADD R8, R4, -1
            IMAX R8, R8, RZ           // clamp north row
            IMAD R9, R8, {cols}, R5
            LDG R10, [R9+{t_base}]    // tN
            IADD R8, R4, 1
            IMIN R8, R8, {rows - 1}
            IMAD R9, R8, {cols}, R5
            LDG R11, [R9+{t_base}]    // tS
            IADD R8, R5, -1
            IMAX R8, R8, RZ
            IMAD R9, R4, {cols}, R8
            LDG R12, [R9+{t_base}]    // tW
            IADD R8, R5, 1
            IMIN R8, R8, {cols - 1}
            IMAD R9, R4, {cols}, R8
            LDG R13, [R9+{t_base}]    // tE
            IADD R14, R3, {p_base}
            LDG R15, [R14]            // power
            FADD R16, R10, R11
            FMUL R17, R7, 2.0
            FSUB R20, R16, R17
            FADD R18, R12, R13
            FSUB R21, R18, R17
            FMUL R22, R20, 0.1
            FFMA R23, R21, 0.1, R22
            FFMA R24, R15, 0.5, R23
            FADD R25, R24, R7
            IADD R19, R3, {o_base}
            STG [R19], R25
            EXIT
        """
        kernel = self._assemble("hotspot", source)
        launch = LaunchConfig(ctas, 128)
        memory = MemorySpace(o_base + cells, name="hotspot")
        rng = np.random.default_rng(seed)
        temp = rng.uniform(320, 340, (rows, cols)).astype(F32)
        power = rng.uniform(0, 1, (rows, cols)).astype(F32)
        memory.write_f32(t_base, temp.reshape(-1))
        memory.write_f32(p_base, power.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            north = temp[np.maximum(np.arange(rows) - 1, 0)]
            south = temp[np.minimum(np.arange(rows) + 1, rows - 1)]
            west = temp[:, np.maximum(np.arange(cols) - 1, 0)]
            east = temp[:, np.minimum(np.arange(cols) + 1, cols - 1)]
            two_t = (temp * F32(2.0)).astype(F32)
            vertical = ((north + south).astype(F32) - two_t).astype(F32)
            horizontal = ((west + east).astype(F32) - two_t).astype(F32)
            acc = (vertical * F32(0.1)).astype(F32)
            acc = (horizontal * F32(0.1) + acc).astype(F32)
            acc = (power * F32(0.5) + acc).astype(F32)
            want = (acc + temp).astype(F32)
            got = mem.read_f32(o_base, cells).reshape(rows, cols)
            return np.array_equal(got, want)

        return WorkloadInstance("hotspot", kernel, launch, memory, verify)


class Heartwall(Workload):
    """heartwall: fp32 template correlation over 5x5 windows."""

    name = "heartwall"
    paper_name = "heart"
    description = "fp32 windowed template correlation (MAC loops)"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        cols = 64
        rows = self._scaled(16, scale, minimum=2) * 2
        cells = rows * cols
        i_base = 16
        k_base = i_base + cells
        o_base = k_base + 25
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            SHR R4, R3, 6             // y
            AND R5, R3, 63            // x
            MOV R6, 0                 // acc
            MOV R7, 0                 // wy
        wyloop:
            IADD R9, R4, R7
            IADD R9, R9, -2
            IMAX R9, R9, RZ
            IMIN R9, R9, {rows - 1}
            IADD R10, R5, -2
            IMAX R10, R10, RZ
            IMAD R11, R9, {cols}, R10
            IMAD R13, R7, 5, RZ
            // fully unrolled 5-tap row (clamped column walks right)
            LDG R12, [R11+{i_base}]
            LDG R14, [R13+{k_base}]
            FMUL R17, R12, R14
            IADD R18, R10, 1
            IMIN R18, R18, {cols - 1}
            IMAD R11, R9, {cols}, R18
            LDG R12, [R11+{i_base}]
            LDG R14, [R13+{k_base + 1}]
            FFMA R19, R12, R14, R17
            IADD R18, R18, 1
            IMIN R18, R18, {cols - 1}
            IMAD R11, R9, {cols}, R18
            LDG R12, [R11+{i_base}]
            LDG R14, [R13+{k_base + 2}]
            FFMA R20, R12, R14, R19
            IADD R18, R18, 1
            IMIN R18, R18, {cols - 1}
            IMAD R11, R9, {cols}, R18
            LDG R12, [R11+{i_base}]
            LDG R14, [R13+{k_base + 3}]
            FFMA R21, R12, R14, R20
            IADD R18, R18, 1
            IMIN R18, R18, {cols - 1}
            IMAD R11, R9, {cols}, R18
            LDG R12, [R11+{i_base}]
            LDG R14, [R13+{k_base + 4}]
            FFMA R22, R12, R14, R21
            FADD R6, R6, R22          // one accumulation per row
            IADD R7, R7, 1
            ISETP.LT P0, R7, 5
        @P0 BRA wyloop
            FMAX R15, R6, RZ
            FSQRT R15, R15
            FADD R15, R15, R6
            IADD R16, R3, {o_base}
            STG [R16], R15
            EXIT
        """
        kernel = self._assemble("heartwall", source)
        launch = LaunchConfig(cells // 128, 128)
        memory = MemorySpace(o_base + cells, name="heartwall")
        rng = np.random.default_rng(seed)
        image = rng.uniform(0, 1, (rows, cols)).astype(F32)
        template = rng.uniform(-1, 1, 25).astype(F32)
        memory.write_f32(i_base, image.reshape(-1))
        memory.write_f32(k_base, template)

        def verify(mem: MemorySpace) -> bool:
            ys = np.arange(rows)[:, None]
            xs = np.arange(cols)[None, :]
            acc = np.zeros((rows, cols), dtype=F32)
            for wy in range(5):
                yy = np.clip(ys + wy - 2, 0, rows - 1)
                xx = np.clip(xs - 2, 0, cols - 1)
                row_sum = (image[yy, xx] * template[wy * 5]).astype(F32)
                for wx in range(1, 5):
                    xx = np.clip(xx + 1, 0, cols - 1)
                    row_sum = (image[yy, xx] * template[wy * 5 + wx] +
                               row_sum).astype(F32)
                acc = (acc + row_sum).astype(F32)
            rooted = np.sqrt(np.maximum(acc, F32(0))).astype(F32)
            want = (rooted + acc).astype(F32)
            got = mem.read_f32(o_base, cells).reshape(rows, cols)
            return np.array_equal(got, want)

        return WorkloadInstance("heartwall", kernel, launch, memory, verify)


class SradV2(Workload):
    """srad_v2: fp32 anisotropic-diffusion update (load/store heavy)."""

    name = "srad_v2"
    paper_name = "srad_v2"
    description = "fp32 SRAD diffusion step: gradients, coefficient, update"

    def build(self, scale: float = 1.0, seed: int = 0) -> WorkloadInstance:
        cols = 64
        rows = self._scaled(32, scale, minimum=2) * 2
        cells = rows * cols
        i_base = 16
        o_base = i_base + cells
        source = f"""
            S2R R0, SR_TID
            S2R R1, SR_CTAID
            S2R R2, SR_NTID
            IMAD R3, R1, R2, R0
            SHR R4, R3, 6
            AND R5, R3, 63
            IADD R6, R3, {i_base}
            LDG R7, [R6]
            IADD R8, R4, -1
            IMAX R8, R8, RZ
            IMAD R9, R8, {cols}, R5
            LDG R10, [R9+{i_base}]
            IADD R8, R4, 1
            IMIN R8, R8, {rows - 1}
            IMAD R9, R8, {cols}, R5
            LDG R11, [R9+{i_base}]
            IADD R8, R5, -1
            IMAX R8, R8, RZ
            IMAD R9, R4, {cols}, R8
            LDG R12, [R9+{i_base}]
            IADD R8, R5, 1
            IMIN R8, R8, {cols - 1}
            IMAD R9, R4, {cols}, R8
            LDG R13, [R9+{i_base}]
            FSUB R14, R10, R7         // dN
            FSUB R15, R11, R7         // dS
            FSUB R16, R12, R7         // dW
            FSUB R17, R13, R7         // dE
            FMUL R18, R14, R14
            FFMA R22, R15, R15, R18
            FFMA R23, R16, R16, R22
            FFMA R24, R17, R17, R23   // G2
            FADD R19, R24, 1.0
            FRCP R25, R19             // c = 1/(1+G2)
            FADD R20, R14, R15
            FADD R26, R20, R16
            FADD R27, R26, R17
            FMUL R28, R27, R25
            FFMA R29, R28, 0.25, R7
            IADD R21, R3, {o_base}
            STG [R21], R29
            EXIT
        """
        kernel = self._assemble("srad_v2", source)
        launch = LaunchConfig(cells // 128, 128)
        memory = MemorySpace(o_base + cells, name="srad_v2")
        rng = np.random.default_rng(seed)
        image = rng.uniform(0.1, 1.0, (rows, cols)).astype(F32)
        memory.write_f32(i_base, image.reshape(-1))

        def verify(mem: MemorySpace) -> bool:
            north = image[np.maximum(np.arange(rows) - 1, 0)]
            south = image[np.minimum(np.arange(rows) + 1, rows - 1)]
            west = image[:, np.maximum(np.arange(cols) - 1, 0)]
            east = image[:, np.minimum(np.arange(cols) + 1, cols - 1)]
            d_n = (north - image).astype(F32)
            d_s = (south - image).astype(F32)
            d_w = (west - image).astype(F32)
            d_e = (east - image).astype(F32)
            g2 = (d_n * d_n).astype(F32)
            g2 = (d_s * d_s + g2).astype(F32)
            g2 = (d_w * d_w + g2).astype(F32)
            g2 = (d_e * d_e + g2).astype(F32)
            coeff = (F32(1) / (g2 + F32(1)).astype(F32)).astype(F32)
            total = (d_n + d_s).astype(F32)
            total = (total + d_w).astype(F32)
            total = (total + d_e).astype(F32)
            total = (total * coeff).astype(F32)
            want = (total * F32(0.25) + image).astype(F32)
            got = mem.read_f32(o_base, cells).reshape(rows, cols)
            return np.array_equal(got, want)

        return WorkloadInstance("srad_v2", kernel, launch, memory, verify)


register(LavaMd())
register(Backprop())
register(Kmeans())
register(Gaussian())
register(Lud())
register(Hotspot())
register(Heartwall())
register(SradV2())
