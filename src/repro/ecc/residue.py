"""Low-cost residue codes (Avizienis 1971), Section II-B of the paper.

A residue code stores ``data mod A`` as its check bits, where the checking
modulus ``A = 2**a - 1`` is one less than a power of two ("low-cost" because
the residue can be produced with end-around-carry adders instead of general
division).  Residues are closed under modular arithmetic, which is what makes
them predictable across add/multiply/MAD datapaths (Section III-C).

Low-cost residues have a *double zero*: with ``a`` check bits, both ``0`` and
``A`` (the all-ones pattern) represent residue zero.  Encoders here emit the
canonical value in ``[0, A)`` but the decoder accepts either representation,
matching the hardware described around Table III.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import CodeConstructionError, InvalidArgument
from repro.ecc.base import DetectionOnlyCode
from repro.ecc.vectorized import as_u64

#: the low-cost checking moduli evaluated in the paper (Figure 11)
LOW_COST_MODULI = (3, 7, 15, 31, 63, 127, 255)


def is_low_cost_modulus(modulus: int) -> bool:
    """True when ``modulus`` has the low-cost form ``2**a - 1`` with a >= 2."""
    return modulus >= 3 and (modulus & (modulus + 1)) == 0


def residue(value: int, modulus: int) -> int:
    """Return the canonical residue of ``value`` modulo ``modulus``."""
    return value % modulus


def residue_add(lhs: int, rhs: int, modulus: int) -> int:
    """Low-cost residue addition (closed under the code)."""
    return (lhs + rhs) % modulus


def residue_sub(lhs: int, rhs: int, modulus: int) -> int:
    """Low-cost residue subtraction."""
    return (lhs - rhs) % modulus


def residue_mul(lhs: int, rhs: int, modulus: int) -> int:
    """Low-cost residue multiplication (closed under the code)."""
    return (lhs * rhs) % modulus


def split_correction_factor(modulus: int) -> int:
    """Return ``2**32 mod A``, the Equation 1 addend-correction factor.

    The factor is a power of two for every low-cost modulus, so the
    correction multiply in Figure 9a is free (wiring only).  The paper lists
    the values for moduli 3..255 as 1, 4, 1, 4, 4, 16, 1.
    """
    if not is_low_cost_modulus(modulus):
        raise CodeConstructionError(
            f"{modulus} is not a low-cost modulus (2**a - 1)")
    return pow(2, 32, modulus)


def combine_split_residues(high: int, low: int, modulus: int) -> int:
    """Derive ``|C|_A`` from the 32b-half residues per Equation 1.

    ``C = C_hi * 2**32 + C_low`` so
    ``|C|_A = |C_hi|_A (x) |2**32|_A (+) |C_low|_A``.
    """
    factor = split_correction_factor(modulus)
    return residue_add(residue_mul(high, factor, modulus), low, modulus)


class ResidueCode(DetectionOnlyCode):
    """A detection-only low-cost residue code over ``data_bits`` bits.

    Geometry: a ``(data_bits + a, data_bits)`` code where ``a`` is the
    bit-length of the checking modulus ``A = 2**a - 1`` — ``(34, 32)``
    for Mod-3 up to ``(40, 32)`` for Mod-255.  Guarantees: detects every
    error whose arithmetic value is not a multiple of ``A`` (all
    single-bit flips included, since no power of two is such a multiple);
    an error pattern changing the value by a multiple of ``A`` aliases.
    Reproduces the ``modN`` columns of Figure 11, the predictor
    arithmetic of Section III-C / Figure 9, and the hardware costs of
    Table III/IV.
    """

    def __init__(self, modulus: int, data_bits: int = 32):
        if not is_low_cost_modulus(modulus):
            raise CodeConstructionError(
                f"{modulus} is not a low-cost modulus (2**a - 1)")
        if data_bits <= 0:
            raise InvalidArgument(f"data_bits must be positive, got {data_bits}")
        self.modulus = modulus
        self.data_bits = data_bits
        self.check_bits = modulus.bit_length()
        self.name = f"mod{modulus}"

    def encode(self, data: int) -> int:
        """Return the canonical residue of ``data`` modulo the checking base."""
        return data % self.modulus

    def encode_many(self, data) -> np.ndarray:
        """Vectorized residue: element-wise modulo over ``uint64`` words."""
        return as_u64(data) % np.uint64(self.modulus)

    def _check_equivalent(self, data: int, check: int) -> bool:
        # Accept the double-zero alternate encoding (all ones == zero).
        return check == self.modulus and data % self.modulus == 0

    def _check_equivalent_many(self, data: np.ndarray,
                               check: np.ndarray) -> np.ndarray:
        # Accept the double-zero alternate encoding (all ones == zero).
        modulus = np.uint64(self.modulus)
        return (check == modulus) & (data % modulus == np.uint64(0))

    def predict_add(self, lhs_check: int, rhs_check: int) -> int:
        """Predict the output residue of an addition from input residues."""
        return residue_add(lhs_check, rhs_check, self.modulus)

    def predict_sub(self, lhs_check: int, rhs_check: int) -> int:
        """Predict the output residue of a subtraction."""
        return residue_sub(lhs_check, rhs_check, self.modulus)

    def predict_mul(self, lhs_check: int, rhs_check: int) -> int:
        """Predict the output residue of a multiplication."""
        return residue_mul(lhs_check, rhs_check, self.modulus)

    def predict_mad(self, a_check: int, b_check: int,
                    addend_high_check: int, addend_low_check: int) -> int:
        """Predict the output residue of the mixed-width GPU MAD.

        The 64b addend arrives as two 32b register residues; Equation 1
        recombines them before the modular multiply-add.
        """
        addend = combine_split_residues(
            addend_high_check, addend_low_check, self.modulus)
        product = residue_mul(a_check, b_check, self.modulus)
        return residue_add(product, addend, self.modulus)

    def split_output_residues(self, value: int) -> Tuple[int, int]:
        """Residues of the two 32b halves of a 64b ``value`` (Figure 9b).

        The modified encoder recodes the full 64b output residue into the
        residues of the constituent 32b register writes; this reference
        implementation computes them directly for checking the netlist.
        """
        low = value & 0xFFFFFFFF
        high = (value >> 32) & 0xFFFFFFFF
        return high % self.modulus, low % self.modulus
