"""Register-file error codes and the SwapCodes schemes built on them.

Quick tour::

    from repro.ecc import HsiaoSecDed, ResidueCode, SecDedDpSwap

    code = HsiaoSecDed()                  # the (39,32) register-file code
    check = code.encode(0xDEADBEEF)
    code.decode(0xDEADBEEF ^ 1, check)    # -> corrected single-bit error

    scheme = SecDedDpSwap()               # Figure 5 reporting
    word = scheme.write_pair(42, 42 ^ 4)  # pipeline error in the shadow
    scheme.read(word)                     # -> benign (data intact)

Every code also exposes a batched API (``encode_many`` / ``decode_many``,
and ``SwapScheme.read_many``) that decodes numpy arrays of words in one
call — see :mod:`repro.ecc.vectorized` for the machinery and the caches.
"""

from repro.ecc.base import (DecodeResult, DecodeStatus, DetectionOnlyCode,
                            ErrorCode)
from repro.ecc.hamming import HammingSec
from repro.ecc.hsiao import HsiaoSecDed, TedCode
from repro.ecc.layout import (BitSite, EccSramPacking, PhysicalRowLayout,
                              interleaved_layout, naive_layout,
                              separated_layout)
from repro.ecc.linear import LinearCode
from repro.ecc.parity import ParityCode
from repro.ecc.residue import (LOW_COST_MODULI, ResidueCode,
                               combine_split_residues, is_low_cost_modulus,
                               residue, residue_add, residue_mul, residue_sub,
                               split_correction_factor)
from repro.ecc.swap import (DetectOnlySwap, ErrorClass, NaiveSecDedSwap,
                            ReadResult, ReadStatus, RegisterWord, SecDedDpSwap,
                            SecDpSwap, SwapScheme)
from repro.ecc.vectorized import (BatchDecodeResult, BatchReadResult,
                                  parity_many, popcount_many)

__all__ = [
    "DecodeResult", "DecodeStatus", "DetectionOnlyCode", "ErrorCode",
    "HammingSec", "HsiaoSecDed", "TedCode", "LinearCode", "ParityCode",
    "LOW_COST_MODULI", "ResidueCode", "combine_split_residues",
    "is_low_cost_modulus", "residue", "residue_add", "residue_mul",
    "residue_sub", "split_correction_factor",
    "BitSite", "EccSramPacking", "PhysicalRowLayout", "interleaved_layout",
    "naive_layout", "separated_layout",
    "DetectOnlySwap", "ErrorClass", "NaiveSecDedSwap", "ReadResult",
    "ReadStatus", "RegisterWord", "SecDedDpSwap", "SecDpSwap", "SwapScheme",
    "BatchDecodeResult", "BatchReadResult", "parity_many", "popcount_many",
]


def standard_register_codes(data_bits: int = 32):
    """The register-file codes swept in Figure 11, keyed by display name."""
    codes = {"parity": ParityCode(data_bits)}
    for modulus in LOW_COST_MODULI:
        codes[f"mod{modulus}"] = ResidueCode(modulus, data_bits)
    codes["secded"] = HsiaoSecDed(data_bits)
    codes["ted"] = TedCode(data_bits)
    return codes
