"""Shared machinery for binary linear codes defined by a parity-check matrix.

A systematic linear code here is a list of *data columns* — the parity-check
matrix column (a ``check_bits``-wide integer) for each data bit — plus an
implicit identity block for the check bits.  The syndrome of a stored word is
the XOR of the recomputed and stored check bits; a zero syndrome means
"consistent", and correction-capable subclasses map nonzero syndromes back to
bit positions.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bitutils import popcount
from repro.errors import CodeConstructionError
from repro.ecc.base import DecodeResult, DecodeStatus, ErrorCode
from repro.ecc.vectorized import (BROADCAST_MAX, BatchDecodeResult, as_u64,
                                  linear_decode_tables, pack_bit_columns,
                                  parity_bits_u8, parity_many)


def odd_weight_columns(check_bits: int, count: int) -> List[int]:
    """Pick ``count`` distinct odd-weight (>=3) columns of ``check_bits`` bits.

    Columns are chosen in increasing weight (3, then 5, ...) and, within a
    weight class, to balance the number of ones per matrix row — the Hsiao
    construction heuristic, which minimizes encoder/decoder logic depth.
    The greedy search is quadratic in the candidate pool, so results are
    memoized process-wide (:func:`_odd_weight_columns_cached`).
    """
    return list(_odd_weight_columns_cached(check_bits, count))


@lru_cache(maxsize=None)
def _odd_weight_columns_cached(check_bits: int,
                               count: int) -> Tuple[int, ...]:
    """Process-wide cache behind :func:`odd_weight_columns`."""
    columns: List[int] = []
    row_load = [0] * check_bits
    for weight in range(3, check_bits + 1, 2):
        if len(columns) == count:
            break
        candidates = [
            sum(1 << bit for bit in bits)
            for bits in combinations(range(check_bits), weight)
        ]
        # Greedy row balancing: repeatedly take the candidate whose rows are
        # least loaded so far.
        remaining = set(candidates)
        while remaining and len(columns) < count:
            best = min(
                remaining,
                key=lambda col: (
                    sum(row_load[row] for row in range(check_bits)
                        if col >> row & 1),
                    col,
                ),
            )
            remaining.discard(best)
            columns.append(best)
            for row in range(check_bits):
                if best >> row & 1:
                    row_load[row] += 1
    if len(columns) < count:
        raise CodeConstructionError(
            f"cannot build {count} odd-weight columns from {check_bits} "
            f"check bits")
    return tuple(columns)


def distinct_nonzero_columns(check_bits: int, count: int) -> List[int]:
    """Pick ``count`` distinct nonzero non-unit columns (Hamming SEC data).

    Even-weight columns are preferred: two even-weight columns never XOR to
    a unit vector, so a double-bit compute error under SwapCodes cannot
    masquerade as a benign check-bit correction.  Odd-weight columns are
    appended (lowest weight first) only when the even pool runs out — this
    is the "careful code design" lever the SEC-DP discussion relies on.
    """
    return list(_distinct_nonzero_columns_cached(check_bits, count))


@lru_cache(maxsize=None)
def _distinct_nonzero_columns_cached(check_bits: int,
                                     count: int) -> Tuple[int, ...]:
    """Process-wide cache behind :func:`distinct_nonzero_columns`."""
    unit = {1 << bit for bit in range(check_bits)}
    candidates = [
        value for value in range(1, 1 << check_bits) if value not in unit
    ]
    candidates.sort(
        key=lambda value: (popcount(value) % 2, popcount(value), value))
    if len(candidates) < count:
        raise CodeConstructionError(
            f"cannot build {count} distinct columns from {check_bits} "
            f"check bits")
    return tuple(candidates[:count])


class LinearCode(ErrorCode):
    """A systematic linear block code given by its data columns."""

    def __init__(self, name: str, data_columns: Sequence[int],
                 check_bits: int):
        if len(set(data_columns)) != len(data_columns):
            raise CodeConstructionError("data columns must be distinct")
        for column in data_columns:
            if not 0 < column < (1 << check_bits):
                raise CodeConstructionError(
                    f"column 0x{column:x} out of range for {check_bits} "
                    f"check bits")
            if column.bit_count() == 1:
                raise CodeConstructionError(
                    "unit-weight data columns collide with check columns")
        self.name = name
        self.data_bits = len(data_columns)
        self.check_bits = check_bits
        self.data_columns = list(data_columns)
        # Syndrome lookup: column value -> global bit index.  Data bits are
        # indexed 0..data_bits-1, check bits follow.
        self._syndrome_map: Dict[int, int] = {
            column: index for index, column in enumerate(self.data_columns)
        }
        for bit in range(check_bits):
            self._syndrome_map[1 << bit] = self.data_bits + bit

    @property
    def can_correct(self) -> bool:
        """Linear codes here map syndromes to correctable bit positions."""
        return True

    def encode(self, data: int) -> int:
        """Check bits for ``data``: XOR of the columns of its set bits."""
        check = 0
        for index, column in enumerate(self.data_columns):
            if data >> index & 1:
                check ^= column
        return check

    def syndrome(self, data: int, check: int) -> int:
        """XOR of the recomputed and stored check bits."""
        return self.encode(data) ^ check

    def decode(self, data: int, check: int) -> DecodeResult:
        """Map the syndrome to OK / corrected-bit / DUE (scalar path)."""
        self._validate(data, check)
        syndrome = self.syndrome(data, check)
        if syndrome == 0:
            return DecodeResult(DecodeStatus.OK, data)
        if not self._syndrome_correctable(syndrome):
            return DecodeResult(DecodeStatus.DUE, data)
        position = self._syndrome_map.get(syndrome)
        if position is None:
            return DecodeResult(DecodeStatus.DUE, data)
        if position < self.data_bits:
            return DecodeResult(
                DecodeStatus.CORRECTED_DATA, data ^ (1 << position), position)
        return DecodeResult(DecodeStatus.CORRECTED_CHECK, data, position)

    def _syndrome_correctable(self, syndrome: int) -> bool:
        """Hook: may this nonzero syndrome be treated as a single-bit error?"""
        return True

    # -- batched API (see repro.ecc.vectorized) ----------------------------

    def _tables(self):
        """The shared decode tables for this code's geometry (cached)."""
        tables = getattr(self, "_vector_tables", None)
        if tables is None:
            tables = linear_decode_tables(self)
            self._vector_tables = tables
        return tables

    def encode_many(self, data) -> np.ndarray:
        """Vectorized encode: GF(2) matmul as XOR-popcount over row masks.

        Warp-sized batches broadcast against the packed parity-check rows
        (a fixed handful of numpy calls); larger batches stream one pass
        per check row to avoid the ``(n, rows)`` intermediates.
        """
        words = as_u64(data)
        tables = self._tables()
        if words.size <= BROADCAST_MAX:
            bits = parity_bits_u8(words[:, None] & tables.row_masks)
            return (bits * tables.row_weights).sum(axis=1, dtype=np.uint64)
        check = np.zeros(len(words), dtype=np.uint64)
        for row, row_mask in enumerate(tables.row_masks):
            check |= parity_many(words & row_mask) << np.uint64(row)
        return check

    def decode_many(self, data, check) -> BatchDecodeResult:
        """Vectorized decode via the precomputed syndrome tables."""
        data_words = as_u64(data)
        check_words = as_u64(check)
        self._validate_many(data_words, check_words)
        tables = self._tables()
        if tables.codeword_masks is not None \
                and data_words.size <= BROADCAST_MAX:
            # Fused path: pack data|check into one word so each syndrome
            # bit is a single popcount-parity against a codeword mask.
            packed = (data_words << np.uint64(self.check_bits)) \
                | check_words
            bits = parity_bits_u8(packed[:, None] & tables.codeword_masks)
            syndrome = pack_bit_columns(bits)
        else:
            syndrome = self.encode_many(data_words) ^ check_words
        return BatchDecodeResult(
            tables.status[syndrome],
            data_words ^ tables.data_xor[syndrome],
            tables.corrected_bit[syndrome])

    def check_alias_error_count(self, max_weight: int = 3) -> int:
        """Count data error patterns of weight <= ``max_weight`` whose
        syndrome is a single *check* column.

        Under SwapCodes such a compute error masquerades as a benign
        check-bit storage correction — the only way a <= 3-bit pipeline
        error can slip past SEC-DED-DP reporting.  Lower is better; the
        column constructions above minimize this count.
        """
        count = 0
        for weight in range(2, max_weight + 1):
            for bits in combinations(range(self.data_bits), weight):
                syndrome = 0
                for bit in bits:
                    syndrome ^= self.data_columns[bit]
                if popcount(syndrome) == 1:
                    count += 1
        return count
