"""Shared machinery for binary linear codes defined by a parity-check matrix.

A systematic linear code here is a list of *data columns* — the parity-check
matrix column (a ``check_bits``-wide integer) for each data bit — plus an
implicit identity block for the check bits.  The syndrome of a stored word is
the XOR of the recomputed and stored check bits; a zero syndrome means
"consistent", and correction-capable subclasses map nonzero syndromes back to
bit positions.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence

from repro.bitutils import popcount
from repro.errors import CodeConstructionError
from repro.ecc.base import DecodeResult, DecodeStatus, ErrorCode


def odd_weight_columns(check_bits: int, count: int) -> List[int]:
    """Pick ``count`` distinct odd-weight (>=3) columns of ``check_bits`` bits.

    Columns are chosen in increasing weight (3, then 5, ...) and, within a
    weight class, to balance the number of ones per matrix row — the Hsiao
    construction heuristic, which minimizes encoder/decoder logic depth.
    """
    columns: List[int] = []
    row_load = [0] * check_bits
    for weight in range(3, check_bits + 1, 2):
        if len(columns) == count:
            break
        candidates = [
            sum(1 << bit for bit in bits)
            for bits in combinations(range(check_bits), weight)
        ]
        # Greedy row balancing: repeatedly take the candidate whose rows are
        # least loaded so far.
        remaining = set(candidates)
        while remaining and len(columns) < count:
            best = min(
                remaining,
                key=lambda col: (
                    sum(row_load[row] for row in range(check_bits)
                        if col >> row & 1),
                    col,
                ),
            )
            remaining.discard(best)
            columns.append(best)
            for row in range(check_bits):
                if best >> row & 1:
                    row_load[row] += 1
    if len(columns) < count:
        raise CodeConstructionError(
            f"cannot build {count} odd-weight columns from {check_bits} "
            f"check bits")
    return columns


def distinct_nonzero_columns(check_bits: int, count: int) -> List[int]:
    """Pick ``count`` distinct nonzero non-unit columns (Hamming SEC data).

    Even-weight columns are preferred: two even-weight columns never XOR to
    a unit vector, so a double-bit compute error under SwapCodes cannot
    masquerade as a benign check-bit correction.  Odd-weight columns are
    appended (lowest weight first) only when the even pool runs out — this
    is the "careful code design" lever the SEC-DP discussion relies on.
    """
    unit = {1 << bit for bit in range(check_bits)}
    candidates = [
        value for value in range(1, 1 << check_bits) if value not in unit
    ]
    candidates.sort(
        key=lambda value: (popcount(value) % 2, popcount(value), value))
    if len(candidates) < count:
        raise CodeConstructionError(
            f"cannot build {count} distinct columns from {check_bits} "
            f"check bits")
    return candidates[:count]


class LinearCode(ErrorCode):
    """A systematic linear block code given by its data columns."""

    def __init__(self, name: str, data_columns: Sequence[int],
                 check_bits: int):
        if len(set(data_columns)) != len(data_columns):
            raise CodeConstructionError("data columns must be distinct")
        for column in data_columns:
            if not 0 < column < (1 << check_bits):
                raise CodeConstructionError(
                    f"column 0x{column:x} out of range for {check_bits} "
                    f"check bits")
            if column.bit_count() == 1:
                raise CodeConstructionError(
                    "unit-weight data columns collide with check columns")
        self.name = name
        self.data_bits = len(data_columns)
        self.check_bits = check_bits
        self.data_columns = list(data_columns)
        # Syndrome lookup: column value -> global bit index.  Data bits are
        # indexed 0..data_bits-1, check bits follow.
        self._syndrome_map: Dict[int, int] = {
            column: index for index, column in enumerate(self.data_columns)
        }
        for bit in range(check_bits):
            self._syndrome_map[1 << bit] = self.data_bits + bit

    @property
    def can_correct(self) -> bool:
        return True

    def encode(self, data: int) -> int:
        check = 0
        for index, column in enumerate(self.data_columns):
            if data >> index & 1:
                check ^= column
        return check

    def syndrome(self, data: int, check: int) -> int:
        """XOR of the recomputed and stored check bits."""
        return self.encode(data) ^ check

    def decode(self, data: int, check: int) -> DecodeResult:
        self._validate(data, check)
        syndrome = self.syndrome(data, check)
        if syndrome == 0:
            return DecodeResult(DecodeStatus.OK, data)
        if not self._syndrome_correctable(syndrome):
            return DecodeResult(DecodeStatus.DUE, data)
        position = self._syndrome_map.get(syndrome)
        if position is None:
            return DecodeResult(DecodeStatus.DUE, data)
        if position < self.data_bits:
            return DecodeResult(
                DecodeStatus.CORRECTED_DATA, data ^ (1 << position), position)
        return DecodeResult(DecodeStatus.CORRECTED_CHECK, data, position)

    def _syndrome_correctable(self, syndrome: int) -> bool:
        """Hook: may this nonzero syndrome be treated as a single-bit error?"""
        return True

    def check_alias_error_count(self, max_weight: int = 3) -> int:
        """Count data error patterns of weight <= ``max_weight`` whose
        syndrome is a single *check* column.

        Under SwapCodes such a compute error masquerades as a benign
        check-bit storage correction — the only way a <= 3-bit pipeline
        error can slip past SEC-DED-DP reporting.  Lower is better; the
        column constructions above minimize this count.
        """
        count = 0
        for weight in range(2, max_weight + 1):
            for bits in combinations(range(self.data_bits), weight):
                syndrome = 0
                for bit in bits:
                    syndrome ^= self.data_columns[bit]
                if popcount(syndrome) == 1:
                    count += 1
        return count
