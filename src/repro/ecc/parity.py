"""Single-bit parity: the weakest detection-only code considered.

Parity detects every odd-weight error pattern and misses every even-weight
pattern; it anchors the low end of the Figure 11 coverage sweep.
"""

from __future__ import annotations

import numpy as np

from repro.bitutils import parity
from repro.errors import InvalidArgument
from repro.ecc.base import DetectionOnlyCode
from repro.ecc.vectorized import as_u64, parity_many


class ParityCode(DetectionOnlyCode):
    """Even parity over ``data_bits`` bits (one check bit).

    Geometry: a ``(data_bits + 1, data_bits)`` code — ``(33, 32)`` for the
    default register width.  Guarantees: detects every *odd*-weight error
    pattern (any single-bit flip included) and misses every even-weight
    pattern, so it only bounds — never eliminates — SDC risk.  Reproduces
    the ``parity`` column of the paper's Figure 11 sweep and the swapped
    detection-only baseline of Section II-B.
    """

    def __init__(self, data_bits: int = 32):
        if data_bits <= 0:
            raise InvalidArgument(f"data_bits must be positive, got {data_bits}")
        self.data_bits = data_bits
        self.check_bits = 1
        self.name = f"parity-{data_bits}"

    def encode(self, data: int) -> int:
        """Return the even-parity bit of ``data``."""
        return parity(data)

    def encode_many(self, data) -> np.ndarray:
        """Vectorized parity: per-word popcount modulo two."""
        return parity_many(as_u64(data))
