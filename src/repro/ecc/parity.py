"""Single-bit parity: the weakest detection-only code considered.

Parity detects every odd-weight error pattern and misses every even-weight
pattern; it anchors the low end of the Figure 11 coverage sweep.
"""

from __future__ import annotations

from repro.bitutils import parity
from repro.ecc.base import DetectionOnlyCode


class ParityCode(DetectionOnlyCode):
    """Even parity over ``data_bits`` bits (one check bit)."""

    def __init__(self, data_bits: int = 32):
        if data_bits <= 0:
            raise ValueError(f"data_bits must be positive, got {data_bits}")
        self.data_bits = data_bits
        self.check_bits = 1
        self.name = f"parity-{data_bits}"

    def encode(self, data: int) -> int:
        return parity(data)
