"""Batched GF(2) machinery behind the vectorized ECC codec layer.

Scalar :meth:`~repro.ecc.base.ErrorCode.decode` is the hot path of every
injection campaign: the GPU model funnels each register read through the
SwapCodes decoder, and a statistically meaningful campaign replays whole
programs thousands of times.  This module supplies the shared numpy
plumbing that lets codes decode *arrays* of words at once:

* packed bit-matrix representations of a linear code's parity-check
  matrix (one ``uint64`` row mask per check bit) so ``encode_many`` is a
  GF(2) matrix-vector product computed as XOR-popcount over machine
  words;
* precomputed syndrome-decode tables (status, data-correction mask,
  corrected-bit index per syndrome) so ``decode_many`` is a table
  lookup;
* a process-wide constructor cache: tables are built once per
  ``(class, data_bits, check_bits, columns)`` and shared by every code
  instance with that geometry, so repeatedly constructing
  ``HsiaoSecDed()`` — as worker subprocesses and sweeps do — costs a
  dictionary hit instead of a column search.

The integer status encodings here mirror the public enums
(:class:`~repro.ecc.base.DecodeStatus`, :class:`~repro.ecc.swap.ReadStatus`)
one-for-one; containers carry plain numpy arrays so callers can stay
vectorized end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import DecodingError

#: integer encodings of :class:`~repro.ecc.base.DecodeStatus`, in enum order
STATUS_OK = 0
STATUS_CORRECTED_DATA = 1
STATUS_CORRECTED_CHECK = 2
STATUS_DUE = 3

#: integer encodings of :class:`~repro.ecc.swap.ReadStatus`, in enum order
READ_OK = 0
READ_CORRECTED = 1
READ_DUE = 2

#: batch size up to which the fused broadcast paths beat per-row passes.
#: Broadcasting against the packed parity-check rows costs a handful of
#: numpy calls regardless of width — ideal for warp-sized batches — but
#: materializes ``(n, rows)`` intermediates; past this size the per-row
#: streaming passes win on memory traffic.
BROADCAST_MAX = 2048


def as_u64(values) -> np.ndarray:
    """Coerce a sequence of non-negative words to a 1-D ``uint64`` array.

    Inputs a 64-bit word cannot represent fail loudly with a
    :class:`~repro.errors.DecodingError` — negative integers and Python
    ints of 65+ bits would otherwise wrap silently (or surface as a bare
    ``OverflowError``) and decode as garbage.  Arrays that are already
    ``uint64`` pass through untouched, keeping the hot batched paths
    allocation-free.
    """
    if isinstance(values, np.ndarray) and values.dtype == np.uint64:
        return values if values.ndim == 1 else values.reshape(-1)
    try:
        array = np.asarray(values)
    except OverflowError:
        raise DecodingError(
            "codeword integer does not fit in 64 bits") from None
    if array.ndim != 1:
        array = array.reshape(-1)
    if array.dtype.kind in "if" and array.size and array.min() < 0:
        raise DecodingError(
            f"codeword integers must be non-negative, got "
            f"{array.min()} at index {int(array.argmin())}")
    try:
        return array.astype(np.uint64)
    except (OverflowError, TypeError):
        raise DecodingError(
            "codeword integer does not fit in 64 bits") from None


if hasattr(np, "bitwise_count"):
    def popcount_many(values: np.ndarray) -> np.ndarray:
        """Per-element population count of a ``uint64`` array."""
        return np.bitwise_count(values).astype(np.uint64)
else:  # numpy < 2.0: SWAR popcount over 64-bit words
    def popcount_many(values: np.ndarray) -> np.ndarray:
        """Per-element population count of a ``uint64`` array."""
        v = values.astype(np.uint64)
        v = v - ((v >> np.uint64(1)) & np.uint64(0x5555555555555555))
        v = (v & np.uint64(0x3333333333333333)) + \
            ((v >> np.uint64(2)) & np.uint64(0x3333333333333333))
        v = (v + (v >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return (v * np.uint64(0x0101010101010101)) >> np.uint64(56)


def parity_many(values: np.ndarray) -> np.ndarray:
    """Per-element XOR-of-all-bits (0 or 1) of a ``uint64`` array."""
    return popcount_many(values) & np.uint64(1)


if hasattr(np, "bitwise_count"):
    def parity_bits_u8(values: np.ndarray) -> np.ndarray:
        """Per-element parity as ``uint8`` (shape-preserving, 2-D friendly).

        The narrow dtype keeps the hot read path allocation-light and
        feeds :func:`np.packbits` directly.
        """
        return np.bitwise_count(values) & np.uint8(1)
else:  # numpy < 2.0
    def parity_bits_u8(values: np.ndarray) -> np.ndarray:
        """Per-element parity as ``uint8`` (shape-preserving, 2-D friendly)."""
        return (popcount_many(values) & np.uint64(1)).astype(np.uint8)


def pack_bit_columns(bits: np.ndarray) -> np.ndarray:
    """Collapse an ``(n, k)`` 0/1 ``uint8`` matrix into per-row integers.

    Column ``j`` contributes ``2**j`` — the weighted sum that turns a
    matrix of syndrome/report bits into table indices.  Up to eight
    columns this is a single ``np.packbits`` call; wider matrices take
    the explicit weighted sum.
    """
    if bits.shape[1] <= 8:
        return np.packbits(bits, axis=1, bitorder="little")[:, 0]
    weights = np.uint64(1) << np.arange(bits.shape[1], dtype=np.uint64)
    return (bits * weights).sum(axis=1, dtype=np.uint64)


@dataclass(frozen=True)
class BatchDecodeResult:
    """Array-of-structs verdicts from one ``decode_many`` call.

    Attributes:
        status: per-word ``STATUS_*`` codes (``uint8``), mirroring
            :class:`~repro.ecc.base.DecodeStatus` in declaration order.
        data: per-word (possibly corrected) data values (``uint64``).
            Words flagged ``STATUS_DUE`` echo their raw input data, which
            callers must not trust — exactly like the scalar decoder.
        corrected_bit: per-word corrected global bit index (``int16``),
            or ``-1`` when no single-bit correction was performed.
    """

    status: np.ndarray
    data: np.ndarray
    corrected_bit: np.ndarray

    def __len__(self) -> int:
        return len(self.status)


@dataclass(frozen=True)
class BatchReadResult:
    """Array-of-structs verdicts from one ``SwapScheme.read_many`` call.

    Attributes:
        status: per-word ``READ_*`` codes (``uint8``), mirroring
            :class:`~repro.ecc.swap.ReadStatus` in declaration order.
        data: per-word data as the register file would deliver it
            (``uint64``); corrected where the scheme corrected, raw where
            it raised a DUE.
    """

    status: np.ndarray
    data: np.ndarray

    def __len__(self) -> int:
        return len(self.status)


class LinearDecodeTables:
    """Packed matrices and syndrome tables for one linear code geometry.

    ``row_masks[j]`` holds the ``data_bits``-wide mask of data positions
    feeding check bit ``j`` (row ``j`` of the parity-check matrix), so the
    check bits of a word are ``parity(data & row_masks[j]) << j`` — a
    GF(2) matrix product evaluated as XOR-popcount.  The three syndrome
    tables are indexed by syndrome value and answer the whole decode in
    one gather each.
    """

    __slots__ = ("row_masks", "row_weights", "codeword_masks", "status",
                 "data_xor", "corrected_bit")

    def __init__(self, code) -> None:
        check_bits = code.check_bits
        columns = code.data_columns
        self.row_masks = np.array(
            [sum(1 << index for index, column in enumerate(columns)
                 if column >> row & 1)
             for row in range(check_bits)], dtype=np.uint64)
        self.row_weights = np.uint64(1) << np.arange(check_bits,
                                                     dtype=np.uint64)
        # Codeword-layout masks over ``data << check_bits | check``: one
        # popcount per row yields the syndrome bit (recomputed XOR stored)
        # directly.  Only possible when the codeword fits a machine word.
        if code.data_bits + check_bits <= 64:
            self.codeword_masks = np.array(
                [(int(row_mask) << check_bits) | (1 << row)
                 for row, row_mask in enumerate(self.row_masks)],
                dtype=np.uint64)
        else:
            self.codeword_masks = None
        size = 1 << check_bits
        self.status = np.full(size, STATUS_DUE, dtype=np.uint8)
        self.data_xor = np.zeros(size, dtype=np.uint64)
        self.corrected_bit = np.full(size, -1, dtype=np.int16)
        self.status[0] = STATUS_OK
        for syndrome in range(1, size):
            if not code._syndrome_correctable(syndrome):
                continue
            position = code._syndrome_map.get(syndrome)
            if position is None:
                continue
            if position < code.data_bits:
                self.status[syndrome] = STATUS_CORRECTED_DATA
                self.data_xor[syndrome] = np.uint64(1 << position)
            else:
                self.status[syndrome] = STATUS_CORRECTED_CHECK
            self.corrected_bit[syndrome] = position


#: process-wide constructor cache: geometry key -> shared decode tables
_TABLE_CACHE: Dict[Tuple, LinearDecodeTables] = {}


def linear_decode_tables(code) -> LinearDecodeTables:
    """The shared :class:`LinearDecodeTables` for ``code``'s geometry.

    Keyed by ``(class, data_bits, check_bits, data columns)`` so distinct
    column sets (e.g. :meth:`~repro.ecc.hsiao.HsiaoSecDed.low_alias`)
    never share tables, while repeated constructions of the same code —
    one per injection-campaign worker, typically — reuse one build.
    """
    key = (type(code), code.data_bits, code.check_bits,
           tuple(code.data_columns))
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = LinearDecodeTables(code)
        _TABLE_CACHE[key] = tables
    return tables


class SwapReadTables:
    """One-gather decode tables for a SwapCodes register read port.

    Flattens a whole ``SwapScheme.read`` — linear decode *plus* the
    Figure 5 data-parity reporting — into a single lookup.  The stored
    word is packed as ``dp << (data_bits + check_bits) | data <<
    check_bits | check``; each mask row extracts one index bit by parity
    (the ``check_bits`` syndrome rows, then — for the data-parity
    policies — one stale-DP row covering the data segment and the DP
    bit).  The resulting index addresses ``status``/``data_xor`` arrays
    that answer the read in one gather each, which is what makes
    warp-wide ``read_many`` an order of magnitude faster than looping
    the scalar read port.
    """

    __slots__ = ("masks", "weights", "status", "data_xor")

    def __init__(self, code, policy: str) -> None:
        decode = linear_decode_tables(code)
        check_bits = code.check_bits
        data_bits = code.data_bits
        masks = [int(mask) for mask in decode.codeword_masks]
        with_dp = policy in ("accept", "strict")
        if with_dp:
            data_segment = ((1 << data_bits) - 1) << check_bits
            dp_bit = 1 << (data_bits + check_bits)
            masks.append(data_segment | dp_bit)
        self.masks = np.array(masks, dtype=np.uint64)
        self.weights = np.uint64(1) << np.arange(len(masks), dtype=np.uint64)
        size = 1 << len(masks)
        syndromes = 1 << check_bits
        self.status = np.empty(size, dtype=np.uint8)
        self.data_xor = np.zeros(size, dtype=np.uint64)
        for index in range(size):
            syndrome = index & (syndromes - 1)
            stale_dp = index >> check_bits
            decoded = int(decode.status[syndrome])
            if not with_dp:  # the naive (miscorrecting) strawman
                if decoded == STATUS_OK:
                    self.status[index] = READ_OK
                elif decoded == STATUS_DUE:
                    self.status[index] = READ_DUE
                else:
                    self.status[index] = READ_CORRECTED
                    self.data_xor[index] = decode.data_xor[syndrome]
                continue
            # Figure 5 reporting (see _DataParitySwap.read for the prose).
            if decoded == STATUS_OK:
                self.status[index] = READ_CORRECTED if stale_dp else READ_OK
            elif decoded == STATUS_CORRECTED_CHECK:
                self.status[index] = READ_DUE if policy == "strict" \
                    else READ_CORRECTED
            elif decoded == STATUS_CORRECTED_DATA:
                if stale_dp:
                    self.status[index] = READ_CORRECTED
                    self.data_xor[index] = decode.data_xor[syndrome]
                else:
                    self.status[index] = READ_DUE
            else:
                self.status[index] = READ_DUE


#: process-wide cache: (geometry key, reporting policy) -> read tables
_READ_TABLE_CACHE: Dict[Tuple, SwapReadTables] = {}


def swap_read_tables(code, policy: str):
    """Shared :class:`SwapReadTables` for ``code`` under ``policy``.

    ``policy`` is ``"accept"`` or ``"strict"`` (the data-parity schemes'
    check-correction policies) or ``"naive"`` (plain SEC-DED reporting).
    Returns ``None`` when the packed layout cannot fit a 64-bit word or
    the code exposes no linear decode tables — callers then fall back to
    their generic vectorized path.
    """
    if not hasattr(code, "data_columns"):
        return None
    extra = 1 if policy in ("accept", "strict") else 0
    if code.data_bits + code.check_bits + extra > 64:
        return None
    if linear_decode_tables(code).codeword_masks is None:
        return None
    key = (type(code), code.data_bits, code.check_bits,
           tuple(code.data_columns), policy)
    tables = _READ_TABLE_CACHE.get(key)
    if tables is None:
        tables = SwapReadTables(code, policy)
        _READ_TABLE_CACHE[key] = tables
    return tables


def table_cache_size() -> int:
    """Number of distinct code geometries currently cached (for tests)."""
    return len(_TABLE_CACHE)
