"""Hamming single-error-correcting (SEC) codes.

The SEC-DP scheme (Section III-B) downgrades the register file to a 6-bit
SEC code over 32b data and spends the seventh bit on data parity, fitting
within the redundancy budget of the original SEC-DED code.
"""

from __future__ import annotations

from repro.ecc.linear import LinearCode, distinct_nonzero_columns


class HammingSec(LinearCode):
    """A (k + c, k) Hamming SEC code; default is the (38, 32) register code.

    Geometry: ``(data_bits + check_bits, data_bits)`` — the default
    ``(38, 32)`` leaves one bit of the SEC-DED redundancy budget free for
    the data-parity bit of the SEC-DP scheme (Section III-B).
    Guarantees: corrects every single-bit error; double-bit errors are
    *detected or miscorrected* (distance 3, no guaranteed double
    detection), which is exactly why SEC-DP augments it with data parity
    before trusting corrections.  Reproduces the ``sec-dp`` column of
    Figure 11.
    """

    def __init__(self, data_bits: int = 32, check_bits: int = 6):
        columns = distinct_nonzero_columns(check_bits, data_bits)
        super().__init__(
            f"sec-{data_bits + check_bits}-{data_bits}", columns, check_bits)
