"""Hsiao SEC-DED codes (Hsiao 1970) — the paper's primary correcting code.

A Hsiao code uses distinct odd-weight parity-check columns.  Single-bit
errors produce odd-weight syndromes (correctable); double-bit errors produce
even-weight nonzero syndromes (always detected).  Used detection-only, the
code guarantees *triple*-bit error detection (TED), the property SwapCodes
exploits against pipeline errors (Section IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.bitutils import popcount
from repro.ecc.base import DecodeResult, DecodeStatus, DetectionOnlyCode
from repro.ecc.linear import LinearCode, odd_weight_columns


#: a (39,32) column set found by local search that minimizes the number of
#: 3-bit data error patterns aliasing to a check column (308 of 4960 triples
#: versus 580 for the balanced construction); see
#: :meth:`repro.ecc.linear.LinearCode.check_alias_error_count`.
LOW_ALIAS_COLUMNS_39_32 = (
    14, 49, 67, 69, 70, 73, 74, 76, 79, 81, 82, 84, 87, 88, 91, 93, 94, 97,
    98, 100, 103, 104, 107, 109, 110, 112, 115, 117, 118, 121, 122, 124,
)


class HsiaoSecDed(LinearCode):
    """A (k + c, k) Hsiao SEC-DED code; default is the (39, 32) register code.

    Geometry: ``(data_bits + check_bits, data_bits)`` — the default
    ``(39, 32)`` matches the per-register SEC-DED budget of GPU register
    files (Section II-A).  Guarantees: corrects every single-bit error
    (data or check), detects every double-bit error; under SwapCodes'
    swapped writeback it is the correcting code inside the SEC-DED-DP
    scheme of Figure 5 and the ``secded-dp`` column of Figure 11.
    """

    def __init__(self, data_bits: int = 32, check_bits: int = 7):
        columns = odd_weight_columns(check_bits, data_bits)
        super().__init__(
            f"secded-{data_bits + check_bits}-{data_bits}", columns,
            check_bits)

    @classmethod
    def low_alias(cls) -> "HsiaoSecDed":
        """The (39,32) code with :data:`LOW_ALIAS_COLUMNS_39_32`.

        Trades Hsiao's row balance for roughly half the 3-bit compute-error
        aliasing under SwapCodes reporting.
        """
        code = cls.__new__(cls)
        LinearCode.__init__(
            code, "secded-39-32-lowalias", LOW_ALIAS_COLUMNS_39_32, 7)
        return code

    def _syndrome_correctable(self, syndrome: int) -> bool:
        # Even-weight syndromes are multi-bit detections by construction.
        return popcount(syndrome) % 2 == 1


class TedCode(DetectionOnlyCode):
    """A Hsiao SEC-DED code operated detection-only (triple error detecting).

    Geometry: the same ``(39, 32)`` codeword as :class:`HsiaoSecDed`.
    Guarantees: any nonzero syndrome raises a DUE; because the underlying
    code has minimum distance 4, every 1-, 2-, or 3-bit error is caught —
    the property Section IV-B leans on against pipeline errors, and the
    ``ted`` column of Figure 11.
    """

    def __init__(self, data_bits: int = 32, check_bits: int = 7):
        self._inner = HsiaoSecDed(data_bits, check_bits)
        self.data_bits = data_bits
        self.check_bits = check_bits
        self.name = f"ted-{data_bits + check_bits}-{data_bits}"

    def encode(self, data: int) -> int:
        """Return the underlying Hsiao code's check bits for ``data``."""
        return self._inner.encode(data)

    def encode_many(self, data) -> np.ndarray:
        """Vectorized encode via the underlying Hsiao code's bit matrices."""
        return self._inner.encode_many(data)
