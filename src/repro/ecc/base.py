"""Common interface for the register-file error codes used by SwapCodes.

Every code is *systematic*: a codeword is the pair ``(data, check)`` where
``data`` is stored unmodified and ``check`` is computed from it.  SwapCodes
relies on this property (Section II-B of the paper) because the data segment
is written by the original instruction and the check segment by its shadow.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bitutils import mask
from repro.errors import DecodingError
from repro.ecc.vectorized import (BatchDecodeResult, STATUS_CORRECTED_CHECK,
                                  STATUS_CORRECTED_DATA, STATUS_DUE,
                                  STATUS_OK, as_u64)


class DecodeStatus(enum.Enum):
    """Outcome of decoding one ECC word.

    Against the campaign taxonomy (masked / SDC / DUE):

    * ``OK`` — the stored word is consistent.  An error-free read, or a
      fault whose effect the code cannot see (an aliasing pattern); in
      the latter case the wrong data is silently accepted, which the
      campaigns tally as **SDC** unless the data happens to be intact
      (**masked**).
    * ``CORRECTED_DATA`` — a single-bit data correction was applied.  A
      true storage flip repaired this way is **masked**; a multi-bit
      pipeline error *mis*-corrected this way becomes an **SDC** (the
      hazard the data-parity schemes of Figure 5 exist to close).
    * ``CORRECTED_CHECK`` — a single check-bit was repaired; the data
      segment was never wrong, so the read is **masked**.
    * ``DUE`` — detected-uncorrectable: the decoder refuses the word and
      the machine halts or recovers.  This is the **DUE** bucket, the
      paper's desired outcome for every pipeline error.
    """

    OK = "ok"
    CORRECTED_DATA = "corrected_data"
    CORRECTED_CHECK = "corrected_check"
    DUE = "due"


#: DecodeStatus -> integer code used by the batched decoders
STATUS_TO_CODE = {
    DecodeStatus.OK: STATUS_OK,
    DecodeStatus.CORRECTED_DATA: STATUS_CORRECTED_DATA,
    DecodeStatus.CORRECTED_CHECK: STATUS_CORRECTED_CHECK,
    DecodeStatus.DUE: STATUS_DUE,
}

#: integer code -> DecodeStatus (inverse of :data:`STATUS_TO_CODE`)
CODE_TO_STATUS = {code: status for status, code in STATUS_TO_CODE.items()}


@dataclass(frozen=True)
class DecodeResult:
    """The decoder's verdict on a ``(data, check)`` pair.

    Attributes:
        status: what the decoder concluded.
        data: the (possibly corrected) data value.  For a DUE this echoes the
            raw input data, which callers must not trust.
        corrected_bit: index of the corrected bit when a single-bit
            correction was performed; data bits are indexed from 0, check
            bits from ``data_bits`` upward.  ``None`` otherwise.
    """

    status: DecodeStatus
    data: int
    corrected_bit: Optional[int] = None

    @property
    def is_error(self) -> bool:
        """True when the decoder saw any inconsistency."""
        return self.status is not DecodeStatus.OK

    @property
    def is_due(self) -> bool:
        """True when a detected-yet-uncorrected error was flagged."""
        return self.status is DecodeStatus.DUE


class ErrorCode(abc.ABC):
    """A systematic error detecting or correcting code.

    Subclasses define :attr:`data_bits`, :attr:`check_bits`, the check-bit
    generator :meth:`encode`, and the decoder :meth:`decode`.
    """

    #: number of protected data bits per codeword
    data_bits: int
    #: number of redundant check bits per codeword
    check_bits: int
    #: short human-readable identifier ("secded-39-32", "mod3", ...)
    name: str

    @property
    def total_bits(self) -> int:
        """Total codeword width (data plus check bits)."""
        return self.data_bits + self.check_bits

    @property
    def can_correct(self) -> bool:
        """True when the decoder may repair (rather than only flag) errors."""
        return False

    @abc.abstractmethod
    def encode(self, data: int) -> int:
        """Return the check bits for ``data``."""

    @abc.abstractmethod
    def decode(self, data: int, check: int) -> DecodeResult:
        """Decode a stored ``(data, check)`` pair."""

    # -- batched API -------------------------------------------------------
    #
    # The defaults below are *exact-equivalence fallbacks*: they loop the
    # scalar encode/decode so any subclass gets a correct batched API for
    # free.  Performance-critical codes (the linear codes, parity,
    # residues) override them with numpy implementations; the property
    # tests in tests/ecc/test_vectorized.py pin the two paths together
    # bit for bit.

    def encode_many(self, data) -> np.ndarray:
        """Check bits for an array of data words (``uint64`` in and out).

        Fallback implementation: loops the scalar :meth:`encode`.
        """
        words = as_u64(data)
        return np.fromiter((self.encode(int(word)) for word in words),
                           dtype=np.uint64, count=len(words))

    def syndrome_many(self, data, check) -> np.ndarray:
        """XOR of recomputed and stored check bits, element-wise.

        Zero means the stored check segment matches the canonical
        encoding; codes with non-canonical equivalent encodings (the
        residue double zero) may still accept a nonzero value, which is
        why :meth:`decode_many` — not this helper — is the authority on
        acceptance.
        """
        return self.encode_many(data) ^ as_u64(check)

    def decode_many(self, data, check) -> BatchDecodeResult:
        """Decode arrays of ``(data, check)`` pairs in one call.

        Fallback implementation: loops the scalar :meth:`decode` and
        packs the verdicts into a :class:`BatchDecodeResult`.  Inputs are
        range-checked up front so the batch rejects out-of-range words
        with the same :class:`DecodingError` the scalar path raises.
        """
        data_words = as_u64(data)
        check_words = as_u64(check)
        self._validate_many(data_words, check_words)
        count = len(data_words)
        status = np.empty(count, dtype=np.uint8)
        out = np.empty(count, dtype=np.uint64)
        corrected = np.full(count, -1, dtype=np.int16)
        for index in range(count):
            result = self.decode(int(data_words[index]),
                                 int(check_words[index]))
            status[index] = STATUS_TO_CODE[result.status]
            out[index] = result.data
            if result.corrected_bit is not None:
                corrected[index] = result.corrected_bit
        return BatchDecodeResult(status, out, corrected)

    def _validate_many(self, data: np.ndarray, check: np.ndarray) -> None:
        """Raise :class:`DecodingError` when any element is out of range.

        Mirrors the scalar :meth:`_validate` message, naming the first
        offending word and its index so a bad element in a warp-wide
        batch is as diagnosable as a bad scalar.
        """
        if len(data) and int(data.max()) > mask(self.data_bits):
            index = int(np.argmax(data > np.uint64(mask(self.data_bits))))
            raise DecodingError(
                f"data 0x{int(data[index]):x} at index {index} does not "
                f"fit in {self.data_bits} bits")
        if len(check) and int(check.max()) > mask(self.check_bits):
            index = int(np.argmax(check > np.uint64(mask(self.check_bits))))
            raise DecodingError(
                f"check 0x{int(check[index]):x} at index {index} does not "
                f"fit in {self.check_bits} bits")

    def detects(self, data: int, data_error: int, check_error: int = 0) -> bool:
        """Report whether an error pattern on a valid codeword is caught.

        ``data_error`` and ``check_error`` are XOR masks applied to the data
        and check segments of the codeword for ``data``.  Returns True when
        the decoder either flags a DUE or corrects back to the original data;
        False means silent data corruption (wrong data accepted).
        """
        check = self.encode(data)
        result = self.decode(data ^ data_error, check ^ check_error)
        if result.is_due:
            return True
        return result.data == data

    def _validate(self, data: int, check: int) -> None:
        """Raise :class:`DecodingError` on out-of-range inputs."""
        if not 0 <= data <= mask(self.data_bits):
            raise DecodingError(
                f"data 0x{data:x} does not fit in {self.data_bits} bits")
        if not 0 <= check <= mask(self.check_bits):
            raise DecodingError(
                f"check 0x{check:x} does not fit in {self.check_bits} bits")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"data_bits={self.data_bits}, check_bits={self.check_bits})")


class DetectionOnlyCode(ErrorCode):
    """Base for codes that never attempt correction (residue, parity, TED).

    A detection-only decoder has exactly two verdicts — ``OK`` or ``DUE``
    — so the batched path reduces to one vectorized re-encode and a
    comparison; subclasses only supply :meth:`encode_many` (and, for
    non-canonical encodings, :meth:`_check_equivalent_many`).
    """

    def decode(self, data: int, check: int) -> DecodeResult:
        """Accept (``OK``) or reject (``DUE``) — never correct."""
        self._validate(data, check)
        if self.encode(data) == check or self._check_equivalent(data, check):
            return DecodeResult(DecodeStatus.OK, data)
        return DecodeResult(DecodeStatus.DUE, data)

    def decode_many(self, data, check) -> BatchDecodeResult:
        """Vectorized decode: OK where the check segment is accepted."""
        data_words = as_u64(data)
        check_words = as_u64(check)
        self._validate_many(data_words, check_words)
        accepted = (self.encode_many(data_words) == check_words) | \
            self._check_equivalent_many(data_words, check_words)
        status = np.where(accepted, STATUS_OK, STATUS_DUE).astype(np.uint8)
        return BatchDecodeResult(
            status, data_words.copy(),
            np.full(len(data_words), -1, dtype=np.int16))

    def _check_equivalent(self, data: int, check: int) -> bool:
        """Hook for codes with non-canonical check encodings.

        Low-cost residues have a "double zero" (both 0 and the all-ones
        modulus value represent residue zero); such codes override this to
        accept the alternate encoding.
        """
        return False

    def _check_equivalent_many(self, data: np.ndarray,
                               check: np.ndarray) -> np.ndarray:
        """Vectorized counterpart of :meth:`_check_equivalent`."""
        return np.zeros(len(data), dtype=bool)
