"""Common interface for the register-file error codes used by SwapCodes.

Every code is *systematic*: a codeword is the pair ``(data, check)`` where
``data`` is stored unmodified and ``check`` is computed from it.  SwapCodes
relies on this property (Section II-B of the paper) because the data segment
is written by the original instruction and the check segment by its shadow.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Optional

from repro.bitutils import mask
from repro.errors import DecodingError


class DecodeStatus(enum.Enum):
    """Outcome of decoding one ECC word."""

    OK = "ok"
    CORRECTED_DATA = "corrected_data"
    CORRECTED_CHECK = "corrected_check"
    DUE = "due"


@dataclass(frozen=True)
class DecodeResult:
    """The decoder's verdict on a ``(data, check)`` pair.

    Attributes:
        status: what the decoder concluded.
        data: the (possibly corrected) data value.  For a DUE this echoes the
            raw input data, which callers must not trust.
        corrected_bit: index of the corrected bit when a single-bit
            correction was performed; data bits are indexed from 0, check
            bits from ``data_bits`` upward.  ``None`` otherwise.
    """

    status: DecodeStatus
    data: int
    corrected_bit: Optional[int] = None

    @property
    def is_error(self) -> bool:
        """True when the decoder saw any inconsistency."""
        return self.status is not DecodeStatus.OK

    @property
    def is_due(self) -> bool:
        """True when a detected-yet-uncorrected error was flagged."""
        return self.status is DecodeStatus.DUE


class ErrorCode(abc.ABC):
    """A systematic error detecting or correcting code.

    Subclasses define :attr:`data_bits`, :attr:`check_bits`, the check-bit
    generator :meth:`encode`, and the decoder :meth:`decode`.
    """

    #: number of protected data bits per codeword
    data_bits: int
    #: number of redundant check bits per codeword
    check_bits: int
    #: short human-readable identifier ("secded-39-32", "mod3", ...)
    name: str

    @property
    def total_bits(self) -> int:
        """Total codeword width (data plus check bits)."""
        return self.data_bits + self.check_bits

    @property
    def can_correct(self) -> bool:
        """True when the decoder may repair (rather than only flag) errors."""
        return False

    @abc.abstractmethod
    def encode(self, data: int) -> int:
        """Return the check bits for ``data``."""

    @abc.abstractmethod
    def decode(self, data: int, check: int) -> DecodeResult:
        """Decode a stored ``(data, check)`` pair."""

    def detects(self, data: int, data_error: int, check_error: int = 0) -> bool:
        """Report whether an error pattern on a valid codeword is caught.

        ``data_error`` and ``check_error`` are XOR masks applied to the data
        and check segments of the codeword for ``data``.  Returns True when
        the decoder either flags a DUE or corrects back to the original data;
        False means silent data corruption (wrong data accepted).
        """
        check = self.encode(data)
        result = self.decode(data ^ data_error, check ^ check_error)
        if result.is_due:
            return True
        return result.data == data

    def _validate(self, data: int, check: int) -> None:
        """Raise :class:`DecodingError` on out-of-range inputs."""
        if not 0 <= data <= mask(self.data_bits):
            raise DecodingError(
                f"data 0x{data:x} does not fit in {self.data_bits} bits")
        if not 0 <= check <= mask(self.check_bits):
            raise DecodingError(
                f"check 0x{check:x} does not fit in {self.check_bits} bits")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"data_bits={self.data_bits}, check_bits={self.check_bits})")


class DetectionOnlyCode(ErrorCode):
    """Base for codes that never attempt correction (residue, parity, TED)."""

    def decode(self, data: int, check: int) -> DecodeResult:
        self._validate(data, check)
        if self.encode(data) == check or self._check_equivalent(data, check):
            return DecodeResult(DecodeStatus.OK, data)
        return DecodeResult(DecodeStatus.DUE, data)

    def _check_equivalent(self, data: int, check: int) -> bool:
        """Hook for codes with non-canonical check encodings.

        Low-cost residues have a "double zero" (both 0 and the all-ones
        modulus value represent residue zero); such codes override this to
        accept the alternate encoding.
        """
        return False
