"""Register-file codeword layout modelling (Figures 6 and 7).

GPU vector register files are built from wide SRAMs that pack many codewords
per physical row.  Two layout questions from the paper are modelled here:

* **Figure 6** — check-bit packing: a 128b ECC SRAM row holding 7b SEC-DED
  check bits for 16 threads has 16 spare bits of internal fragmentation,
  which is exactly enough to store the SEC-DED-DP data-parity bit for free.
  :class:`EccSramPacking` does that arithmetic for any geometry.

* **Figure 7** — adjacent-double-bit safety for SEC-DP: the only double-bit
  storage pattern SEC-DP can miscorrect pairs a data bit with a check bit of
  the *same* codeword.  A physical layout that interleaves codewords keeps
  every such pair non-adjacent, so a single spatial multi-bit upset (which
  strikes adjacent cells) cannot produce the bad pattern.
  :class:`PhysicalRowLayout` models rows of labelled bits and audits them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import InvalidArgument


@dataclass(frozen=True)
class BitSite:
    """One physical SRAM bit: which codeword it belongs to and its role."""

    codeword: int
    segment: str  # "data", "check", or "dp"
    bit: int

    def __post_init__(self):
        if self.segment not in ("data", "check", "dp"):
            raise InvalidArgument(f"unknown segment {self.segment!r}")


@dataclass(frozen=True)
class EccSramPacking:
    """Check-bit packing arithmetic for a wide ECC SRAM row (Figure 6)."""

    row_bits: int = 128
    words_per_row: int = 16
    check_bits_per_word: int = 7

    @property
    def used_bits(self) -> int:
        """Check bits actually occupied per ECC SRAM row."""
        return self.words_per_row * self.check_bits_per_word

    @property
    def fragmentation_bits(self) -> int:
        """Spare bits per row after packing the check bits."""
        spare = self.row_bits - self.used_bits
        if spare < 0:
            raise InvalidArgument(
                f"{self.used_bits} check bits do not fit in a "
                f"{self.row_bits}b row")
        return spare

    @property
    def dp_fits_free(self) -> bool:
        """True when one data-parity bit per word fits in the spare bits."""
        return self.fragmentation_bits >= self.words_per_row

    def added_redundancy_fraction(self, data_bits: int = 32) -> float:
        """Extra storage cost of the DP bit when it does *not* fit free.

        The paper quotes 1 extra bit per (32 + 7)-bit register = 2.6%.
        """
        if self.dp_fits_free:
            return 0.0
        return 1.0 / (data_bits + self.check_bits_per_word)


class PhysicalRowLayout:
    """An ordered row of :class:`BitSite` cells with adjacency auditing."""

    def __init__(self, sites: Sequence[BitSite]):
        if not sites:
            raise InvalidArgument("layout must contain at least one bit site")
        self.sites: List[BitSite] = list(sites)

    def __len__(self) -> int:
        return len(self.sites)

    def adjacent_pairs(self) -> List[Tuple[BitSite, BitSite]]:
        """All physically adjacent cell pairs within the row."""
        return list(zip(self.sites, self.sites[1:]))

    def vulnerable_adjacent_pairs(self) -> List[Tuple[BitSite, BitSite]]:
        """Adjacent pairs that hit a data bit and a check bit of one codeword.

        These are the SEC-DP miscorrection-capable double-bit patterns; a
        Figure 7 layout returns an empty list.
        """
        vulnerable = []
        for left, right in self.adjacent_pairs():
            if left.codeword != right.codeword:
                continue
            segments = {left.segment, right.segment}
            if segments == {"data", "check"}:
                vulnerable.append((left, right))
        return vulnerable

    def min_intra_word_data_check_distance(self) -> int:
        """Smallest physical distance between a data and check bit of any word."""
        by_word = {}
        for position, site in enumerate(self.sites):
            by_word.setdefault(site.codeword, {"data": [], "check": []})
            if site.segment in ("data", "check"):
                by_word[site.codeword][site.segment].append(position)
        best = len(self.sites)
        for word_sites in by_word.values():
            for data_pos in word_sites["data"]:
                for check_pos in word_sites["check"]:
                    best = min(best, abs(data_pos - check_pos))
        return best


def naive_layout(words: int = 4, data_bits: int = 32,
                 check_bits: int = 6) -> PhysicalRowLayout:
    """Each codeword stored contiguously: data immediately beside its check.

    This is the layout Figure 7 warns against — the last data bit of every
    word sits next to its first check bit.
    """
    sites = []
    for word in range(words):
        sites.extend(BitSite(word, "data", bit) for bit in range(data_bits))
        sites.extend(BitSite(word, "check", bit) for bit in range(check_bits))
    return PhysicalRowLayout(sites)


def separated_layout(words: int = 4, data_bits: int = 32,
                     check_bits: int = 6) -> PhysicalRowLayout:
    """Figure 7's safe layout: all data segments, then all check segments.

    With ``words`` codewords per row, a word's check bits sit at least
    ``data_bits`` cells away from its own data, so no adjacent double-bit
    upset can pair them.
    """
    sites = []
    for word in range(words):
        sites.extend(BitSite(word, "data", bit) for bit in range(data_bits))
    for word in range(words):
        sites.extend(BitSite(word, "check", bit) for bit in range(check_bits))
    return PhysicalRowLayout(sites)


def interleaved_layout(words: int = 4, data_bits: int = 32,
                       check_bits: int = 6) -> PhysicalRowLayout:
    """Bit-interleaved variant: cells of different words alternate.

    Bit-plane interleaving (word 0 bit 0, word 1 bit 0, ...) keeps *any* two
    bits of the same codeword non-adjacent, which protects every code — the
    strongest (and a common industrial) arrangement.
    """
    sites = []
    for bit in range(data_bits):
        sites.extend(BitSite(word, "data", bit) for word in range(words))
    for bit in range(check_bits):
        sites.extend(BitSite(word, "check", bit) for word in range(words))
    return PhysicalRowLayout(sites)
