"""One harness per paper figure/table.

* Figures 10-11 — :mod:`repro.experiments.figures_inject`
  (gate-level error patterns; SwapCodes SDC risk per register-file code).
* Figures 12, 13, 15, 16 — :mod:`repro.experiments.figures_perf`
  (slowdowns, instruction mix, inter-thread comparison, future predictors).
* Figure 14 — :mod:`repro.experiments.fig14_power`.
* Tables I-IV — :mod:`repro.experiments.tables`.
* Recovery coverage (Section VI's re-execution story) —
  :mod:`repro.experiments.recovery_coverage`.
* MBU degradation (detection coverage vs strike multiplicity) —
  :mod:`repro.experiments.mbu_degradation`.
"""

from repro.experiments.common import (SchemeRun, render_table, run_matrix,
                                      run_scheme, slowdown)
from repro.experiments.fig14_power import (FIG14_SCHEMES, FIG14_WORKLOADS,
                                           PowerStudy, render_figure14,
                                           run_power_study)
from repro.experiments.figures_inject import (FIG11_CODE_ORDER,
                                              InjectionStudy,
                                              figure11_schemes,
                                              render_figure10,
                                              render_figure11,
                                              run_injection_study)
from repro.experiments.mbu_degradation import (MBU_MATRIX,
                                               MbuDegradationStudy,
                                               render_mbu_degradation,
                                               run_mbu_degradation_study,
                                               write_mbu_artifact)
from repro.experiments.recovery_coverage import (RECOVERY_MATRIX,
                                                 RecoveryCoverageStudy,
                                                 render_recovery_coverage,
                                                 run_recovery_coverage_study,
                                                 write_recovery_artifact)
from repro.experiments.figures_perf import (FIG12_SCHEMES, FIG15_SCHEMES,
                                            FIG16_SCHEMES, PerformanceStudy,
                                            render_mix_table,
                                            render_slowdown_table,
                                            run_performance_study)
from repro.experiments.tables import (TABLE_I, TABLE_II, format_table_iv,
                                      table_iii, table_iv_rows)

__all__ = [
    "SchemeRun", "render_table", "run_matrix", "run_scheme", "slowdown",
    "FIG14_SCHEMES", "FIG14_WORKLOADS", "PowerStudy", "render_figure14",
    "run_power_study",
    "FIG11_CODE_ORDER", "InjectionStudy", "figure11_schemes",
    "render_figure10", "render_figure11", "run_injection_study",
    "MBU_MATRIX", "MbuDegradationStudy", "render_mbu_degradation",
    "run_mbu_degradation_study", "write_mbu_artifact",
    "RECOVERY_MATRIX", "RecoveryCoverageStudy", "render_recovery_coverage",
    "run_recovery_coverage_study", "write_recovery_artifact",
    "FIG12_SCHEMES", "FIG15_SCHEMES", "FIG16_SCHEMES", "PerformanceStudy",
    "render_mix_table", "render_slowdown_table", "run_performance_study",
    "TABLE_I", "TABLE_II", "format_table_iv", "table_iii", "table_iv_rows",
]
