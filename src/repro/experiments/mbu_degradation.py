"""The MBU-degradation study: detection coverage vs strike multiplicity.

The paper's guarantees are stated for single-bit errors; the certifier
(:mod:`repro.certify`) machine-checks them, and this harness measures
what lies *beyond* them — how each register-file code's detection
coverage degrades as storage strikes widen from one bit to four-bit
multi-bit upsets (MBUs), the shrinking-geometry failure mode that
motivates interleaving in real SRAMs.  Each {code} x {multiplicity} grid
cell is one ``mbu-sweep`` work unit through the campaign engine: every
trial injects a correlated multi-bit :class:`~repro.gpu.resilience.
FaultPlan` into a fresh workload run and classifies the outcome, so the
study rides the same supervisor/journal machinery as every other sweep.

The headline shape to expect: ``secded-dp`` holds full coverage at
multiplicities 1 and 2 (correct-one/detect-two is its design point) and
degrades beyond, while ``parity`` already leaks at multiplicity 2 (any
even-weight strike is parity-invisible).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import render_table
from repro.inject.classify import DETECTION_CLASSES, detection_coverage
from repro.inject.engine import (CampaignEngine, EngineConfig, UnitReport,
                                 mbu_sweep_work_unit)

#: the (code, multiplicity) grid the study sweeps, in display order
MBU_MATRIX: Tuple[Tuple[str, int], ...] = tuple(
    (code, multiplicity)
    for code in ("secded-dp", "ted", "parity")
    for multiplicity in (1, 2, 3, 4))


@dataclass
class MbuDegradationStudy:
    """Per-unit detection outcomes of one MBU-degradation sweep."""

    workload: str
    scale: float
    where: str
    pattern: str
    #: unit id -> the engine's terminal report
    units: Dict[str, UnitReport]
    #: unit id -> fraction of visible trials per DETECTION_CLASSES bin
    coverage: Dict[str, Dict[str, float]]
    #: unit id -> the strike multiplicity that unit swept
    multiplicity: Dict[str, int]

    def coverage_by_multiplicity(self, code: str) -> Dict[int, float]:
        """One code's covered-fraction curve, keyed by multiplicity.

        Covered is the complement of the SDC escape rate: a visible
        strike that was detected loudly, corrected in place, or benignly
        masked.  (Plain ``detected`` would misread correcting schemes,
        whose single-bit storage strikes land in ``masked`` by design.)
        """
        curve: Dict[int, float] = {}
        for unit_id, fractions in self.coverage.items():
            if unit_id.split("/")[-2] == code:
                curve[self.multiplicity[unit_id]] = 1.0 - fractions["sdc"]
        return dict(sorted(curve.items()))


def run_mbu_degradation_study(
        workload: str = "pathfinder", scale: float = 0.2,
        matrix: Sequence[Tuple[str, int]] = MBU_MATRIX,
        trials_per_unit: int = 40, seed: int = 0,
        where: str = "storage", pattern: str = "random",
        lane_spread: int = 1,
        journal_path: Optional[str] = None,
        engine_config: Optional[EngineConfig] = None,
        supervisor=None, salvage: bool = False) -> MbuDegradationStudy:
    """Sweep the {code} x {multiplicity} grid through the campaign engine.

    Each grid cell is one ``mbu-sweep`` work unit; with a
    ``journal_path`` the sweep checkpoints per batch and resumes.  Runs
    inline by default (the units are small and deterministic per seed);
    pass ``engine_config`` for crash-isolated subprocess batches and
    ``supervisor=False`` to opt out of the default supervision.
    """
    import dataclasses

    from repro.inject.supervisor import coerce_supervisor
    if engine_config is None:
        engine_config = EngineConfig(
            batch_size=trials_per_unit, max_batches=1, ci_half_width=None,
            timeout_s=None, isolation="inline", salvage=salvage)
    elif salvage and not engine_config.salvage:
        engine_config = dataclasses.replace(engine_config, salvage=True)
    units = []
    multiplicity_of: Dict[str, int] = {}
    for code, multiplicity in matrix:
        unit_id = f"{workload}/{code}/m{multiplicity}"
        units.append(mbu_sweep_work_unit(
            workload, multiplicity, scale=scale, code=code, seed=seed,
            where=where, pattern=pattern, lane_spread=lane_spread,
            unit_id=unit_id))
        multiplicity_of[unit_id] = multiplicity
    supervisor = coerce_supervisor(supervisor)
    engine = CampaignEngine(engine_config, supervisor=supervisor)
    if supervisor is None:
        report = engine.run(units, journal_path)
    else:
        with supervisor:
            report = engine.run(units, journal_path)
    coverage = {unit_id: detection_coverage(unit.counts)
                for unit_id, unit in report.units.items()}
    return MbuDegradationStudy(
        workload=workload, scale=scale, where=where, pattern=pattern,
        units=report.units, coverage=coverage,
        multiplicity={unit_id: multiplicity_of.get(unit_id, 0)
                      for unit_id in report.units})


def render_mbu_degradation(study: MbuDegradationStudy) -> str:
    """Plain-text detection-coverage table, one row per unit."""
    headers = ["unit", "mult"] + [name for name in DETECTION_CLASSES] \
        + ["visible"]
    rows: List[List[str]] = []
    for unit_id, fractions in study.coverage.items():
        unit = study.units[unit_id]
        rows.append([unit_id, str(study.multiplicity[unit_id])] +
                    [f"{fractions[name] * 100:.0f}%"
                     for name in DETECTION_CLASSES] + [str(unit.trials)])
    return render_table(headers, rows)


def write_mbu_artifact(study: MbuDegradationStudy,
                       path: str) -> Dict[str, Any]:
    """Write the study's machine-readable JSON artifact; returns the dict.

    Schema (version 1)::

        {"version": 1, "workload": ..., "scale": ..., "where": ...,
         "pattern": ..., "classes": [...DETECTION_CLASSES...],
         "units": {unit_id: {"status": ..., "trials": ...,
                             "multiplicity": ..., "counts": {...},
                             "coverage": {...}}}}
    """
    artifact: Dict[str, Any] = {
        "version": 1,
        "workload": study.workload,
        "scale": study.scale,
        "where": study.where,
        "pattern": study.pattern,
        "classes": list(DETECTION_CLASSES),
        "units": {},
    }
    for unit_id, unit in study.units.items():
        artifact["units"][unit_id] = {
            "status": unit.status,
            "trials": unit.trials,
            "multiplicity": study.multiplicity[unit_id],
            "counts": {key: value for key, value in unit.counts.items()
                       if value},
            "coverage": study.coverage[unit_id],
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact
