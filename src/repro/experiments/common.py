"""Shared plumbing for the per-figure experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import (CodeMixProfiler, MixCounts, compile_for_scheme,
                            resilience_mode)
from repro.ecc import SecDedDpSwap
from repro.errors import CompilationError, InvalidArgument
from repro.gpu import Device, ResilienceState, TimingParams, run_functional
from repro.gpu.power import PowerEstimate, PowerModel
from repro.workloads import WORKLOADS, WorkloadInstance, get_workload


@dataclass
class SchemeRun:
    """One (workload, scheme) measurement."""

    workload: str
    scheme: str
    cycles: int
    seconds: float
    verified: bool
    mix: MixCounts
    warps_per_sm: int
    registers_per_thread: int
    power: PowerEstimate
    rejected: bool = False


def run_scheme(instance: WorkloadInstance, scheme: str,
               device: Optional[Device] = None,
               power_model: Optional[PowerModel] = None) -> SchemeRun:
    """Compile, run with timing, verify, and profile one configuration.

    A scheme the pass rejects for this workload (inter-thread on SNAP or
    matrixMul) yields a record with ``rejected=True``.
    """
    if device is None:
        device = Device()
    if power_model is None:
        power_model = PowerModel()
    try:
        compiled = compile_for_scheme(instance.kernel, instance.launch,
                                      scheme)
    except CompilationError:
        return SchemeRun(
            workload=instance.name, scheme=scheme, cycles=0, seconds=0.0,
            verified=False, mix=MixCounts(), warps_per_sm=0,
            registers_per_thread=0,
            power=PowerEstimate(0.0, 0.0, power_model.static_watts),
            rejected=True)
    launch = compiled.adjust_launch(instance.launch)
    memory = instance.fresh_memory()
    profiler = CodeMixProfiler()
    mode = resilience_mode(scheme)
    state = ResilienceState(
        mode=mode, scheme=SecDedDpSwap() if mode == "swap" else None)
    result = device.launch(compiled.kernel, launch, memory,
                           resilience=state, observer=profiler)
    return SchemeRun(
        workload=instance.name, scheme=scheme, cycles=result.cycles,
        seconds=result.seconds, verified=instance.verify(memory),
        mix=profiler.counts,
        warps_per_sm=result.occupancy.warps_per_sm,
        registers_per_thread=result.occupancy.registers_per_thread,
        power=power_model.estimate(result))


def run_matrix(workloads: Sequence[str], schemes: Sequence[str],
               scale: float = 1.0, seed: int = 0,
               device: Optional[Device] = None
               ) -> Dict[str, Dict[str, SchemeRun]]:
    """The (workload x scheme) measurement grid behind Figures 12-16."""
    if device is None:
        device = Device()
    grid: Dict[str, Dict[str, SchemeRun]] = {}
    for name in workloads:
        instance = get_workload(name).build(scale=scale, seed=seed)
        grid[name] = {
            scheme: run_scheme(instance, scheme, device)
            for scheme in schemes
        }
    return grid


def slowdown(run: SchemeRun, baseline: SchemeRun) -> float:
    """Relative slowdown versus the un-duplicated program."""
    if baseline.cycles <= 0:
        raise InvalidArgument("baseline did not run")
    return run.cycles / baseline.cycles - 1.0


def geometric_label(value: float) -> str:
    return f"{value * 100:+.0f}%"


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table with right-aligned value columns."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(
        header.ljust(widths[0]) if index == 0 else header.rjust(
            widths[index])
        for index, header in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[0]) if index == 0 else cell.rjust(
                widths[index])
            for index, cell in enumerate(row)))
    return "\n".join(lines)
