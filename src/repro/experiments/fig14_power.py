"""Figure 14: power and energy overheads for the high-utilization pair."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.experiments.common import (SchemeRun, render_table, run_matrix,
                                      slowdown)
from repro.gpu import Device

#: the two highest-GPU-utilization workloads the paper profiles
FIG14_WORKLOADS = ("snap", "matmul")
FIG14_SCHEMES = ("baseline", "swdup", "swap-ecc", "pre-mad")


@dataclass
class PowerStudy:
    grid: Dict[str, Dict[str, SchemeRun]]

    def power_overhead(self, workload: str, scheme: str) -> float:
        runs = self.grid[workload]
        return runs[scheme].power.watts / runs["baseline"].power.watts - 1.0

    def energy_overhead(self, workload: str, scheme: str) -> float:
        runs = self.grid[workload]
        return (runs[scheme].power.joules /
                runs["baseline"].power.joules - 1.0)

    def runtime_overhead(self, workload: str, scheme: str) -> float:
        runs = self.grid[workload]
        return slowdown(runs[scheme], runs["baseline"])


def run_power_study(scale: float = 1.0, seed: int = 0,
                    device: Optional[Device] = None,
                    workloads: Sequence[str] = FIG14_WORKLOADS
                    ) -> PowerStudy:
    return PowerStudy(run_matrix(workloads, FIG14_SCHEMES, scale=scale,
                                 seed=seed, device=device))


def render_figure14(study: PowerStudy) -> str:
    headers = ["workload/scheme", "power", "energy", "runtime"]
    rows = []
    for workload, runs in study.grid.items():
        for scheme in FIG14_SCHEMES[1:]:
            if runs[scheme].rejected:
                continue
            rows.append([
                f"{workload}/{scheme}",
                f"{study.power_overhead(workload, scheme) * 100:+.0f}%",
                f"{study.energy_overhead(workload, scheme) * 100:+.0f}%",
                f"{study.runtime_overhead(workload, scheme) * 100:+.0f}%",
            ])
    return "== power / energy overheads ==\n" + render_table(headers, rows)
