"""Tables I, II, and III as structured data; Table IV via the area model.

Tables I and II are qualitative in the paper; keeping them as data lets the
documentation and the benchmark harness render them alongside the measured
tables.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gates.area import AreaRow, format_table_iv, table_iv_rows
from repro.gates.residue_units import table3_adjustment

#: Table I: qualitative comparison of pipeline error detection alternatives
TABLE_I: Dict[str, Dict[str, str]] = {
    "high-level-duplication": {
        "granularity": "Process/Kernel/Warp",
        "sphere": "Device",
        "sw_changes": "Program/Runtime",
        "hw_changes": "None",
        "transparent": "No",
        "performance_hit": "Medium-High",
        "major_issue": "Data Duplication",
    },
    "thread-duplication": {
        "granularity": "Thread",
        "sphere": "Pipeline",
        "sw_changes": "Runtime/Compiler",
        "hw_changes": "None",
        "transparent": "No",
        "performance_hit": "Medium-High",
        "major_issue": "Thread Usage",
    },
    "instruction-duplication": {
        "granularity": "Instruction",
        "sphere": "Pipeline",
        "sw_changes": "Compiler",
        "hw_changes": "None",
        "transparent": "Yes",
        "performance_hit": "Medium-High",
        "major_issue": "Performance",
    },
    "concurrent-check": {
        "granularity": "Operation",
        "sphere": "Arithmetic",
        "sw_changes": "None",
        "hw_changes": "Arithmetic",
        "transparent": "Yes",
        "performance_hit": "None-Low",
        "major_issue": "Complexity/Scope",
    },
    "swapcodes": {
        "granularity": "Instruction",
        "sphere": "Pipeline",
        "sw_changes": "Compiler",
        "hw_changes": "Control Logic",
        "transparent": "Yes",
        "performance_hit": "Low-Medium",
        "major_issue": "None",
    },
}

#: Table II: the Swap-ECC hardware and software changes
TABLE_II: List[Dict[str, str]] = [
    {"structure": "Backend Compiler",
     "change": "Add an intra-thread duplication pass."},
    {"structure": "Backend Compiler",
     "change": "Swap-ECC-aware scheduling."},
    {"structure": "ISA Meta-Data",
     "change": "Add a 1b data write enable."},
    {"structure": "Register File",
     "change": "Add a data write enable and muxes for move propagation."},
    {"structure": "Error Reporting (Storage Correction)",
     "change": "Augmented error reporting to separate storage from "
               "pipeline errors."},
]


def table_iii(modulus: int = 15) -> List[Dict[str, object]]:
    """Table III: the carry-adjustment signals for one low-cost modulus."""
    rows = []
    for cout in (0, 1):
        for cin in (0, 1):
            signal = table3_adjustment(cin, cout, modulus)
            width = modulus.bit_length()
            adjustment = {(0, 0): "+0", (0, 1): "+1",
                          (1, 0): "-1", (1, 1): "-0"}[(cout, cin)]
            rows.append({
                "cout": cout, "cin": cin,
                "signal": format(signal, f"0{width}b"),
                "adjustment": adjustment,
            })
    return rows


__all__ = ["TABLE_I", "TABLE_II", "table_iii", "AreaRow",
           "format_table_iv", "table_iv_rows"]
