"""The recovery-coverage study: per-scheme ladder outcomes and overhead.

SwapCodes argues detection-plus-re-execution covers pipeline errors while
SEC-DED-DP's retained correction covers storage errors without any replay
at all (Sections V-VI).  This harness measures exactly that split: it
sweeps {scheme} x {strike site} injection units through the campaign
engine's ``gpu-recovery`` runner — every trial runs the full graceful-
degradation ladder with a containment auditor attached — and reports the
per-rung coverage breakdown plus the replayed-instruction overhead.

The headline rows to expect: under ``secded-dp`` storage strikes land in
``corrected_in_place`` with zero replayed instructions, while the *same*
faults under detect-only ``parity`` (and pipeline ``result`` strikes
under any scheme) escalate to the replay rungs.  Containment divergence
is a hard error, so a completed study certifies zero leaks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import render_table
from repro.inject.classify import RECOVERY_CLASSES, recovery_coverage
from repro.inject.engine import (CampaignEngine, EngineConfig, UnitReport,
                                 gpu_recovery_work_unit)

#: the (code, strike-site) grid the study sweeps, in display order
RECOVERY_MATRIX: Tuple[Tuple[str, str], ...] = (
    ("secded-dp", "storage"),
    ("secded-dp", "result"),
    ("parity", "storage"),
    ("parity", "result"),
)


@dataclass
class RecoveryCoverageStudy:
    """Per-unit ladder outcomes of one recovery-coverage sweep."""

    workload: str
    scale: float
    #: unit id -> the engine's terminal report
    units: Dict[str, UnitReport]
    #: unit id -> fraction of visible trials per RECOVERY_CLASSES bin
    coverage: Dict[str, Dict[str, float]]
    #: unit id -> summed ladder telemetry across the unit's batches
    telemetry: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def total_violations(self) -> int:
        return sum(entry.get("violations", 0)
                   for entry in self.telemetry.values())


def _sum_payloads(report: UnitReport) -> Dict[str, int]:
    keys = ("replayed_instructions", "total_instructions", "detections",
            "audits", "violations")
    totals = dict.fromkeys(keys, 0)
    for payload in report.payloads:
        for key in keys:
            totals[key] += int(payload.get(key, 0))
    return totals


def run_recovery_coverage_study(
        workload: str = "pathfinder", scale: float = 0.2,
        matrix: Sequence[Tuple[str, str]] = RECOVERY_MATRIX,
        trials_per_unit: int = 60, seed: int = 0,
        journal_path: Optional[str] = None,
        engine_config: Optional[EngineConfig] = None,
        supervisor=None, salvage: bool = False
        ) -> RecoveryCoverageStudy:
    """Sweep the {code} x {strike-site} grid through the recovery ladder.

    Each grid cell is one ``gpu-recovery`` work unit; with a
    ``journal_path`` the sweep checkpoints per batch and resumes.  Runs
    inline by default (the units are small and deterministic per seed);
    pass ``engine_config`` for crash-isolated subprocess batches.  The
    sweep is supervised by default — SIGTERM/SIGINT drain and journal
    ``campaign_paused``, poison cells are quarantined rather than
    crash-looped, worker resource budgets apply under subprocess
    isolation, and ``salvage=True`` survives journal corruption — pass
    ``supervisor=False`` to opt out.
    """
    import dataclasses

    from repro.inject.supervisor import coerce_supervisor
    if engine_config is None:
        engine_config = EngineConfig(
            batch_size=trials_per_unit, max_batches=1, ci_half_width=None,
            timeout_s=None, isolation="inline", salvage=salvage)
    elif salvage and not engine_config.salvage:
        engine_config = dataclasses.replace(engine_config, salvage=True)
    units = [gpu_recovery_work_unit(workload, scale=scale, code=code,
                                    where=where, seed=seed,
                                    unit_id=f"{workload}/{code}/{where}")
             for code, where in matrix]
    supervisor = coerce_supervisor(supervisor)
    engine = CampaignEngine(engine_config, supervisor=supervisor)
    if supervisor is None:
        report = engine.run(units, journal_path)
    else:
        with supervisor:
            report = engine.run(units, journal_path)
    coverage = {unit_id: recovery_coverage(unit.counts)
                for unit_id, unit in report.units.items()}
    telemetry = {unit_id: _sum_payloads(unit)
                 for unit_id, unit in report.units.items()}
    return RecoveryCoverageStudy(
        workload=workload, scale=scale, units=report.units,
        coverage=coverage, telemetry=telemetry)


def render_recovery_coverage(study: RecoveryCoverageStudy) -> str:
    """Plain-text per-rung coverage table, one row per unit."""
    headers = ["unit"] + [name for name in RECOVERY_CLASSES] + ["replay-ovh"]
    rows: List[List[str]] = []
    for unit_id, fractions in study.coverage.items():
        telemetry = study.telemetry.get(unit_id, {})
        total = telemetry.get("total_instructions", 0)
        replayed = telemetry.get("replayed_instructions", 0)
        overhead = f"{replayed / total * 100:.1f}%" if total else "n/a"
        rows.append([unit_id] +
                    [f"{fractions[name] * 100:.0f}%"
                     for name in RECOVERY_CLASSES] + [overhead])
    return render_table(headers, rows)


def write_recovery_artifact(study: RecoveryCoverageStudy,
                            path: str) -> Dict[str, Any]:
    """Write the study's machine-readable JSON artifact; returns the dict.

    Schema (version 1)::

        {"version": 1, "workload": ..., "scale": ...,
         "classes": [...RECOVERY_CLASSES...],
         "units": {unit_id: {"status": ..., "trials": ...,
                             "counts": {...}, "coverage": {...},
                             "replayed_instructions": ...,
                             "total_instructions": ...,
                             "detections": ..., "audits": ...,
                             "violations": ...}}}
    """
    artifact: Dict[str, Any] = {
        "version": 1,
        "workload": study.workload,
        "scale": study.scale,
        "classes": list(RECOVERY_CLASSES),
        "units": {},
    }
    for unit_id, unit in study.units.items():
        entry: Dict[str, Any] = {
            "status": unit.status,
            "trials": unit.trials,
            "counts": {key: value for key, value in unit.counts.items()
                       if value},
            "coverage": study.coverage[unit_id],
        }
        entry.update(study.telemetry.get(unit_id, {}))
        artifact["units"][unit_id] = entry
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact
