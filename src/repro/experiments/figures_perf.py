"""Figures 12, 13, 15, and 16: performance and code-property studies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.compiler import MIX_CATEGORIES
from repro.experiments.common import (SchemeRun, render_table, run_matrix,
                                      slowdown)
from repro.gpu import Device, TimingParams
from repro.workloads import ALL_ORDER, RODINIA_ORDER

#: Figure 12's evaluated schemes, in display order
FIG12_SCHEMES = ("baseline", "swdup", "swap-ecc", "pre-addsub", "pre-mad")

#: Figure 15's inter-thread configurations
FIG15_SCHEMES = ("baseline", "swdup", "interthread", "interthread-nocheck")

#: Figure 16's projected future-predictor tiers
FIG16_SCHEMES = ("baseline", "pre-mad", "pre-fxp", "pre-fp-addsub",
                 "pre-fp-mad")


@dataclass
class PerformanceStudy:
    """A (workload x scheme) grid plus derived slowdowns."""

    grid: Dict[str, Dict[str, SchemeRun]]
    schemes: Sequence[str]

    def slowdowns(self, scheme: str) -> Dict[str, float]:
        out = {}
        for workload, runs in self.grid.items():
            run = runs[scheme]
            if run.rejected:
                continue
            out[workload] = slowdown(run, runs["baseline"])
        return out

    def mean_slowdown(self, scheme: str) -> float:
        values = list(self.slowdowns(scheme).values())
        return sum(values) / len(values) if values else float("nan")

    def worst_slowdown(self, scheme: str):
        values = self.slowdowns(scheme)
        workload = max(values, key=values.get)
        return values[workload], workload

    def all_verified(self) -> bool:
        return all(run.verified or run.rejected
                   for runs in self.grid.values()
                   for run in runs.values())

    def bloat(self, workload: str, scheme: str) -> float:
        """Dynamic instruction bloat versus the baseline binary."""
        runs = self.grid[workload]
        return runs[scheme].mix.bloat(runs["baseline"].mix.total)

    def mix_fractions(self, workload: str, scheme: str) -> Dict[str, float]:
        """Figure 13 stack: per-category fraction of baseline dynamic count."""
        runs = self.grid[workload]
        fractions = runs[scheme].mix.as_fractions(
            runs["baseline"].mix.total)
        fractions["plain_eligible"] = (
            runs[scheme].mix.plain_eligible / runs["baseline"].mix.total)
        return fractions

    def mean_bloat(self, scheme: str) -> float:
        values = [self.bloat(workload, scheme)
                  for workload, runs in self.grid.items()
                  if not runs[scheme].rejected]
        return sum(values) / len(values)

    def mean_checking_fraction(self, scheme: str) -> float:
        values = []
        for workload, runs in self.grid.items():
            if runs[scheme].rejected:
                continue
            values.append(self.mix_fractions(workload, scheme)["checking"])
        return sum(values) / len(values)


def run_performance_study(schemes: Sequence[str] = FIG12_SCHEMES,
                          workloads: Sequence[str] = ALL_ORDER,
                          scale: float = 1.0, seed: int = 0,
                          device: Optional[Device] = None
                          ) -> PerformanceStudy:
    """Measure a scheme set over the evaluated workloads (Fig. 12/15/16)."""
    grid = run_matrix(workloads, schemes, scale=scale, seed=seed,
                      device=device)
    return PerformanceStudy(grid, schemes)


def render_slowdown_table(study: PerformanceStudy,
                          title: str = "slowdown vs baseline") -> str:
    schemes = [s for s in study.schemes if s != "baseline"]
    headers = ["workload"] + list(schemes)
    rows = []
    for workload, runs in study.grid.items():
        row = [workload]
        for scheme in schemes:
            if runs[scheme].rejected:
                row.append("rej")
            else:
                row.append(f"{slowdown(runs[scheme], runs['baseline']) * 100:+.0f}%")
        rows.append(row)
    rows.append(["MEAN"] + [f"{study.mean_slowdown(s) * 100:+.0f}%"
                            for s in schemes])
    return f"== {title} ==\n" + render_table(headers, rows)


def render_mix_table(study: PerformanceStudy) -> str:
    """Figure 13 as text: per-category instruction fractions."""
    schemes = [s for s in study.schemes if s != "baseline"]
    headers = ["workload/scheme"] + list(MIX_CATEGORIES) + ["total"]
    rows = []
    for workload in study.grid:
        for scheme in schemes:
            if study.grid[workload][scheme].rejected:
                continue
            fractions = study.mix_fractions(workload, scheme)
            total = 1.0 + study.bloat(workload, scheme)
            rows.append(
                [f"{workload}/{scheme}"] +
                [f"{fractions[name] * 100:.0f}%" for name in
                 MIX_CATEGORIES] + [f"{total * 100:.0f}%"])
    return render_table(headers, rows)
