"""Figures 10 and 11: gate-level error patterns and SwapCodes SDC risk."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.ecc.swap import SwapScheme
from repro.experiments.common import render_table
from repro.inject import (SEVERITY_CLASSES, UNIT_ORDER, CampaignResult,
                          Estimate, OperandTrace, make_scheme,
                          run_full_campaign, sdc_risk_sweep,
                          severity_distribution)

#: the register-file codes swept in Figure 11, in display order
FIG11_CODE_ORDER = ("parity", "mod3", "mod7", "mod15", "mod31", "mod63",
                    "mod127", "ted", "secded-dp", "sec-dp")


def figure11_schemes() -> Dict[str, SwapScheme]:
    """SwapCodes organizations for each Figure 11 register-file code."""
    return {name: make_scheme(name) for name in FIG11_CODE_ORDER}


@dataclass
class InjectionStudy:
    """Campaign results plus the derived Figure 10/11 statistics."""

    campaigns: Dict[str, CampaignResult]
    severity: Dict[str, Dict[str, Estimate]]
    sdc_risk: Dict[str, Dict[str, Estimate]]

    def mean_sdc_risk(self, code: str) -> float:
        """SDC risk for one code averaged across the six units."""
        values = [self.sdc_risk[unit][code].mean
                  for unit in self.sdc_risk]
        return sum(values) / len(values)


def run_injection_study(sample_count: int = 1000,
                        site_count: Optional[int] = 300, seed: int = 0,
                        trace: Optional[OperandTrace] = None,
                        units: Sequence[str] = UNIT_ORDER,
                        journal_path: Optional[str] = None,
                        journal_fsync: bool = False,
                        engine_config=None, supervisor=None,
                        salvage: bool = False,
                        shards: Optional[int] = None,
                        fabric_dir: Optional[str] = None,
                        lease_ttl_s: float = 30.0,
                        steal: bool = True,
                        bundle_dir: Optional[str] = None) -> InjectionStudy:
    """Run the six-unit campaign and fold in every Figure 11 code.

    ``journal_path``/``journal_fsync``/``engine_config`` flow to the
    resilient campaign engine: the study then checkpoints per batch
    (fsyncing each record when asked, so even ``kill -9`` loses at most
    one torn line), resumes after interruption, and isolates unit
    crashes (crashed units drop out of the study instead of aborting
    it).  ``supervisor``/``salvage`` flow to the campaign supervisor
    (on by default — see
    :func:`~repro.inject.campaign.run_full_campaign`): SIGTERM/SIGINT
    drain the study gracefully, poison units are quarantined, worker
    resource budgets are enforced, and journal corruption is detected
    by per-record CRC (and survived, with ``salvage=True``).
    ``shards=N`` runs the campaign on the distributed fabric
    (:mod:`repro.inject.fabric`): leased shard processes under
    ``fabric_dir``, heartbeat-TTL work stealing (``steal``,
    ``lease_ttl_s``), crash-tolerant coordination, and a deterministic
    merge of the per-shard journals.  ``bundle_dir`` exports a
    deterministic repro bundle (:mod:`repro.bundle`) for every terminal
    failure.
    """
    campaigns = run_full_campaign(sample_count, site_count, seed, trace,
                                  units, journal_path=journal_path,
                                  journal_fsync=journal_fsync,
                                  engine_config=engine_config,
                                  supervisor=supervisor, salvage=salvage,
                                  shards=shards, fabric_dir=fabric_dir,
                                  lease_ttl_s=lease_ttl_s, steal=steal,
                                  bundle_dir=bundle_dir)
    schemes = figure11_schemes()
    severity = {}
    risk = {}
    for unit, campaign in campaigns.items():
        severity[unit] = severity_distribution(campaign)
        risk[unit] = {}
        for code_name, scheme in schemes.items():
            risk[unit].update(
                {code_name: sdc_risk_sweep(campaign, [scheme])[
                    scheme.name]})
    return InjectionStudy(campaigns, severity, risk)


def render_figure10(study: InjectionStudy) -> str:
    """Figure 10 as text: severity class fractions per unit."""
    headers = ["unit"] + [f"{name}-bit" for name in SEVERITY_CLASSES]
    rows = []
    for unit, distribution in study.severity.items():
        rows.append([unit] + [str(distribution[name])
                              for name in SEVERITY_CLASSES])
    return render_table(headers, rows)


def render_figure11(study: InjectionStudy) -> str:
    """Figure 11 as text: SDC risk per unit per register-file code."""
    codes = [code for code in FIG11_CODE_ORDER
             if any(code in study.sdc_risk[unit]
                    for unit in study.sdc_risk)]
    headers = ["unit"] + list(codes)
    rows = []
    for unit, risks in study.sdc_risk.items():
        rows.append([unit] + [f"{risks[code].mean * 100:.2f}%"
                              for code in codes])
    rows.append(["MEAN"] + [f"{study.mean_sdc_risk(code) * 100:.2f}%"
                            for code in codes])
    return render_table(headers, rows)
