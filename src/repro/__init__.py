"""repro: a from-scratch reproduction of SwapCodes (MICRO 2018).

SwapCodes pairs intra-thread instruction duplication with the register-file
ECC hardware: the original instruction writes a register's data, the shadow
writes its check bits, and every later read implicitly checks for pipeline
errors through the ordinary ECC decoder.

Subpackages:

* :mod:`repro.ecc` — register-file error codes and the SwapCodes schemes.
* :mod:`repro.gates` — gate-level arithmetic unit netlists and area model.
* :mod:`repro.inject` — Hamartia-style gate-level fault injection.
* :mod:`repro.gpu` — SIMT GPU functional + timing simulator.
* :mod:`repro.compiler` — resilience compiler passes (SW-Dup, Swap-ECC,
  Swap-Predict, inter-thread duplication) and the code-mix profiler.
* :mod:`repro.workloads` — Rodinia-like kernels, SNAP proxy, matrixMul.
* :mod:`repro.experiments` — one harness per paper figure/table.
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
