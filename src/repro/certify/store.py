"""Content-addressed, tamper-evident certificate store.

Every cached certificate lives under a key derived from *everything its
validity depends on*:

* the **scheme fingerprint** — family, code name, widths, DP usage,
  check-correction policy, residue modulus, and a sha256 over the
  parity-check structure (the H-matrix data columns for linear codes);
* the **claim-matrix version** plus the per-claim versions of
  :mod:`repro.certify.claims` — a claim whose meaning changed can never
  be served from a certificate swept under the old meaning;
* the **fault-model fingerprint** — the strike-space version, sweep
  mode, seed, and randomized-tier parameters of the
  :class:`~repro.certify.engine.Certifier` that produced it.

A certificate is honest only for the exact fault model it was swept
under, so all three sections feed the sha256 cache key.

Entries are written crash-safely (staged temp file + ``os.replace``,
the :func:`repro.inject.journal.atomic_write_text` discipline) and
carry an *integrity envelope*: the canonical-JSON payload's sha256 and
CRC32, verified on every read.  A corrupt or torn entry is never
served — it is moved to the ``dead-letter/`` subdirectory with a typed
:class:`~repro.errors.CertEntryCorrupt` record (and a repro bundle),
and the read reports a miss so the caller falls through to a fresh
sweep.

Single-flight dedup is an fcntl lockfile per key: concurrent requests
for the same key share one sweep, with capped-exponential
deterministic-jitter backoff (:func:`repro.inject.engine._retry_delay`)
for the waiters.

:func:`touched_claims` is the incremental-recertification oracle: given
a prior cached payload and the new fingerprints, it names exactly the
claims whose verdicts a delta could have changed (per-claim ``depends``
components and ``version`` bumps); everything else is stitched forward
by :func:`stitch_certificate` with provenance recorded in the new JSON.
"""

from __future__ import annotations

import errno
import fcntl
import hashlib
import json
import os
import shutil
import time
import zlib
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import (CertEntryCorrupt, CertStoreError,
                          InvalidArgument)
from repro.inject.journal import atomic_write_text
from repro.certify.claims import (CLAIM_MATRIX_VERSION, SCHEME_COMPONENTS,
                                  claim_matrix, claim_versions)
from repro.certify.engine import validate_artifact_dir
from repro.certify.strikes import STRIKE_SPACE_VERSION

__all__ = [
    "CACHE_SCHEMA_VERSION", "CertificateStore", "KeyLock",
    "certificate_key", "fault_model_fingerprint", "scheme_fingerprint",
    "stitch_certificate", "touched_claims",
]

#: schema version of the cached-certificate payload (the ``payload``
#: object inside the entry envelope); bumping it invalidates the cache
CACHE_SCHEMA_VERSION = 1

#: the ``kind`` field every entry envelope must carry
ENTRY_KIND = "swapcodes-cert-entry"


def _canonical(payload: Any) -> str:
    """The serialization every digest is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# fingerprints and key derivation

def scheme_fingerprint(scheme: Any) -> Dict[str, Any]:
    """The identity a certificate's scheme-side validity hangs on.

    ``h_matrix`` hashes the parity-check structure itself (the ordered
    data columns and check width for linear codes; the code name
    otherwise), so two schemes wired from different H matrices never
    share a cache entry even if their names collide.
    """
    code = scheme.code
    columns = getattr(code, "data_columns", None)
    if columns is not None:
        h_source: Any = {"check_bits": code.check_bits,
                         "columns": list(columns)}
    else:
        h_source = {"code": code.name}
    return {
        "family": type(scheme).__name__,
        "code": code.name,
        "data_bits": code.data_bits,
        "check_bits": code.check_bits,
        "uses_data_parity": bool(scheme.uses_data_parity),
        "policy": getattr(scheme, "check_correction", "accept"),
        "modulus": getattr(code, "modulus", None),
        "h_matrix": hashlib.sha256(
            _canonical(h_source).encode("utf-8")).hexdigest(),
    }


def fault_model_fingerprint(mode: str, seed: int,
                            random_base_words: int = 3,
                            random_strike_count: int = 64
                            ) -> Dict[str, Any]:
    """The fault model (strike space + sweep parameters) of one sweep.

    Mirrors the :class:`~repro.certify.engine.Certifier` constructor —
    a certificate is only valid for the strike tiers it was actually
    swept under, so every knob that shapes the space is part of the key.
    """
    return {
        "strike_space_version": STRIKE_SPACE_VERSION,
        "mode": mode,
        "seed": seed,
        "random_base_words": random_base_words,
        "random_strike_count": random_strike_count,
    }


def certificate_key(fingerprint: Mapping[str, Any],
                    versions: Mapping[str, int],
                    fault_model: Mapping[str, Any]) -> str:
    """The content-addressed cache key of one (scheme, claims, model)."""
    blob = _canonical({
        "scheme": dict(fingerprint),
        "claims": {"matrix_version": CLAIM_MATRIX_VERSION,
                   "versions": dict(versions)},
        "fault_model": dict(fault_model),
    })
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def scheme_cache_identity(scheme: Any, mode: str, seed: int
                          ) -> Tuple[Dict[str, Any], Dict[str, int],
                                     Dict[str, Any], str]:
    """Fingerprints + key for ``scheme`` in one call (service hot path)."""
    fingerprint = scheme_fingerprint(scheme)
    versions = claim_versions(claim_matrix(scheme))
    fault_model = fault_model_fingerprint(mode, seed)
    key = certificate_key(fingerprint, versions, fault_model)
    return fingerprint, versions, fault_model, key


# ---------------------------------------------------------------------------
# incremental recertification

def touched_claims(prior: Mapping[str, Any],
                   fingerprint: Mapping[str, Any],
                   versions: Mapping[str, int],
                   fault_model: Mapping[str, Any],
                   claims: Mapping[str, Any]) -> Optional[Set[str]]:
    """The claims a delta from ``prior`` forces to re-sweep.

    Returns ``None`` when the prior entry cannot seed an incremental
    recertification at all (different fault model, older cache schema,
    a claim-matrix version bump) — the caller must run a full sweep.
    Otherwise returns the set of claim names whose recorded version or
    whose ``depends`` scheme components differ; claims absent from the
    prior certificate are always touched.  An empty set means the prior
    certificate already covers the new key exactly.
    """
    if prior.get("version") != CACHE_SCHEMA_VERSION:
        return None
    if prior.get("claim_matrix_version") != CLAIM_MATRIX_VERSION:
        return None
    if dict(prior.get("fault_model") or {}) != dict(fault_model):
        return None
    prior_fp = prior.get("scheme_fingerprint") or {}
    prior_versions = prior.get("claim_versions") or {}
    prior_claims = (prior.get("certificate") or {}).get("claims") or {}
    touched: Set[str] = set()
    for name, claim in claims.items():
        if name not in prior_claims:
            touched.add(name)
            continue
        if prior_versions.get(name) != versions.get(name):
            touched.add(name)
            continue
        depends = getattr(claim, "depends", SCHEME_COMPONENTS)
        if any(prior_fp.get(component) != fingerprint.get(component)
               for component in depends):
            touched.add(name)
    return touched


def stitch_certificate(partial: Mapping[str, Any],
                       prior: Mapping[str, Any],
                       touched: Set[str],
                       parent_key: str) -> Tuple[Dict[str, Any],
                                                 Dict[str, Any]]:
    """Merge a partial re-sweep with the prior certificate's claims.

    Returns ``(certificate, provenance)``: the certificate carries the
    re-swept claims from ``partial`` and every untouched claim verbatim
    from the prior entry; ``provenance`` records which claims were
    recertified, which were carried forward (and from which key), so
    the stitched JSON is auditable — no claim's verdict appears without
    its origin.
    """
    prior_cert = prior.get("certificate") or {}
    merged = {key: value for key, value in partial.items()}
    claims: Dict[str, Any] = {}
    carried: Dict[str, str] = {}
    for name, report in (prior_cert.get("claims") or {}).items():
        if name not in touched:
            claims[name] = dict(report)
            carried[name] = parent_key
    for name, report in (partial.get("claims") or {}).items():
        claims[name] = dict(report)
    merged["claims"] = claims
    merged["violated"] = sorted(
        name for name, report in claims.items()
        if report.get("verdict") == "violated")
    merged["passed"] = not merged["violated"]
    provenance = {
        "parent_key": parent_key,
        "recertified": sorted(touched),
        "carried_forward": carried,
        "carried_strikes_swept": prior_cert.get("strikes_swept", 0),
    }
    return merged, provenance


# ---------------------------------------------------------------------------
# locking

class KeyLock:
    """An fcntl lockfile guarding one cache key's sweep (single-flight).

    ``acquire(blocking=False)`` is one non-blocking attempt;
    ``blocking=True`` retries with the engine's capped-exponential
    deterministic-jitter backoff until the deadline.  Locks release on
    process death (fcntl semantics), so a SIGKILLed sweep never wedges
    the key.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle: Optional[Any] = None

    def acquire(self, blocking: bool = False,
                timeout_s: float = 120.0, seed: int = 0) -> bool:
        from repro.inject.engine import EngineConfig, _retry_delay
        deadline = time.monotonic() + timeout_s
        backoff = EngineConfig(backoff_s=0.02, backoff_max_s=0.5)
        attempts = 0
        while True:
            handle = open(self.path, "a+")
            try:
                fcntl.flock(handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._handle = handle
                return True
            except OSError as exc:
                handle.close()
                if exc.errno not in (errno.EACCES, errno.EAGAIN):
                    raise CertStoreError(
                        f"cannot lock {self.path!r}: {exc}",
                        context={"path": self.path}) from exc
            if not blocking or time.monotonic() >= deadline:
                return False
            attempts += 1
            delay = _retry_delay(backoff, seed, attempts)
            time.sleep(min(delay, max(0.0,
                                      deadline - time.monotonic())))

    def release(self) -> None:
        if self._handle is None:
            return
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        finally:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "KeyLock":
        self.acquire(blocking=True)
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


# ---------------------------------------------------------------------------
# the store

class CertificateStore:
    """Crash-safe content-addressed storage for certification results.

    Layout under ``cache_dir``::

        entries/<key>.json       integrity-enveloped cached certificates
        latest/<scheme>.json     atomic pointer to a scheme's newest key
        locks/<key>.lock         fcntl single-flight lockfiles
        sweeps/<key>/            engine journals of in-flight sweeps
        dead-letter/             quarantined entries + typed records
        bundles/                 repro bundles exported on quarantine

    ``counters`` tracks ``quarantined`` reads; the service layers its
    hit/miss/stale counters on top.
    """

    def __init__(self, cache_dir: str):
        validate_artifact_dir(cache_dir, what="cache_dir")
        self.cache_dir = cache_dir
        self.entries_dir = os.path.join(cache_dir, "entries")
        self.latest_dir = os.path.join(cache_dir, "latest")
        self.locks_dir = os.path.join(cache_dir, "locks")
        self.sweeps_dir = os.path.join(cache_dir, "sweeps")
        self.dead_letter_dir = os.path.join(cache_dir, "dead-letter")
        self.bundle_dir = os.path.join(cache_dir, "bundles")
        for path in (self.entries_dir, self.latest_dir, self.locks_dir,
                     self.sweeps_dir, self.dead_letter_dir):
            os.makedirs(path, exist_ok=True)
        self.counters: Dict[str, int] = {"quarantined": 0}

    # -- paths -------------------------------------------------------------

    def entry_path(self, key: str) -> str:
        return os.path.join(self.entries_dir, f"{key}.json")

    def latest_path(self, scheme: str) -> str:
        return os.path.join(self.latest_dir, f"{scheme}.json")

    def lock(self, key: str) -> KeyLock:
        return KeyLock(os.path.join(self.locks_dir, f"{key}.lock"))

    def sweep_journal(self, key: str) -> str:
        sweep_dir = os.path.join(self.sweeps_dir, key)
        os.makedirs(sweep_dir, exist_ok=True)
        return os.path.join(sweep_dir, "journal.jsonl")

    # -- envelope ----------------------------------------------------------

    @staticmethod
    def _envelope(key: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
        body = _canonical(dict(payload))
        return {
            "kind": ENTRY_KIND,
            "version": CACHE_SCHEMA_VERSION,
            "key": key,
            "sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
            "crc32": zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF,
            "payload": dict(payload),
        }

    @staticmethod
    def _verify_envelope(key: str, envelope: Any) -> Dict[str, Any]:
        """Return the verified payload or raise CertEntryCorrupt."""
        if not isinstance(envelope, dict):
            raise CertEntryCorrupt(
                f"entry {key} is not a JSON object")
        if envelope.get("kind") != ENTRY_KIND:
            raise CertEntryCorrupt(
                f"entry {key} has kind {envelope.get('kind')!r}, "
                f"expected {ENTRY_KIND!r}")
        if envelope.get("key") != key:
            raise CertEntryCorrupt(
                f"entry file for {key} claims key "
                f"{envelope.get('key')!r}")
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            raise CertEntryCorrupt(f"entry {key} has no payload object")
        body = _canonical(payload).encode("utf-8")
        sha = hashlib.sha256(body).hexdigest()
        if sha != envelope.get("sha256"):
            raise CertEntryCorrupt(
                f"entry {key} failed its sha256 check: envelope says "
                f"{envelope.get('sha256')!r}, payload hashes to {sha}")
        crc = zlib.crc32(body) & 0xFFFFFFFF
        if crc != envelope.get("crc32"):
            raise CertEntryCorrupt(
                f"entry {key} failed its CRC32 check: envelope says "
                f"{envelope.get('crc32')!r}, payload hashes to {crc}")
        return payload

    # -- read / write ------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified payload for ``key``, or ``None``.

        A corrupt or torn entry is quarantined (dead-letter move +
        typed record + repro bundle) and reported as a miss — it is
        never served, and the caller falls through to a fresh sweep.
        """
        path = self.entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CertStoreError(
                f"cannot read entry {key}: {exc}",
                context={"path": path}) from exc
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            self._quarantine(key, path, CertEntryCorrupt(
                f"entry {key} is not valid JSON: {exc}",
                context={"path": path}))
            return None
        try:
            return self._verify_envelope(key, envelope)
        except CertEntryCorrupt as exc:
            exc.context.setdefault("path", path)
            self._quarantine(key, path, exc)
            return None

    def put(self, key: str, payload: Mapping[str, Any]) -> str:
        """Write ``payload`` under ``key`` crash-safely; returns the path.

        Staged temp + ``os.replace``: a reader racing the write (or a
        SIGKILL mid-write) sees either the previous entry or the new
        one, never a torn file.
        """
        path = self.entry_path(key)
        envelope = self._envelope(key, payload)
        atomic_write_text(path,
                          json.dumps(envelope, sort_keys=True, indent=2)
                          + "\n")
        return path

    # -- latest pointers ---------------------------------------------------

    def set_latest(self, scheme: str, key: str) -> None:
        """Atomically point ``scheme`` at its newest cache key."""
        pointer = {"scheme": scheme, "key": key,
                   "created_at": time.time()}
        atomic_write_text(self.latest_path(scheme),
                          json.dumps(pointer, sort_keys=True) + "\n")

    def latest(self, scheme: str
               ) -> Optional[Tuple[str, float, Dict[str, Any]]]:
        """``(key, created_at, payload)`` of the scheme's newest entry.

        ``None`` when there is no pointer, the pointer is corrupt (it is
        quarantined like an entry), or the pointed-to entry failed its
        own envelope (in which case the entry was quarantined too).
        """
        path = self.latest_path(scheme)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CertStoreError(
                f"cannot read latest pointer for {scheme}: {exc}",
                context={"path": path, "scheme": scheme}) from exc
        try:
            pointer = json.loads(raw)
            key = pointer["key"]
            created_at = float(pointer.get("created_at") or 0.0)
        except (json.JSONDecodeError, KeyError, TypeError,
                ValueError) as exc:
            self._quarantine(f"latest-{scheme}", path, CertEntryCorrupt(
                f"latest pointer for {scheme} is corrupt: {exc}",
                context={"path": path, "scheme": scheme}))
            return None
        payload = self.get(key)
        if payload is None:
            return None
        return key, created_at, payload

    # -- quarantine --------------------------------------------------------

    def _quarantine(self, key: str, path: str,
                    error: CertEntryCorrupt) -> Optional[str]:
        """Dead-letter a corrupt file; never raises on best-effort steps.

        The move itself (``os.replace`` into ``dead-letter/``) is the
        load-bearing step: after it, the corrupt bytes can never be
        served again.  The typed record and the repro bundle are
        forensic extras — failure to write them logs into the record's
        absence, not into the read path.
        """
        stamp = f"{int(time.time() * 1000):x}-{os.getpid()}"
        dest = os.path.join(self.dead_letter_dir,
                            f"{key}.{stamp}.quarantined")
        try:
            os.replace(path, dest)
        except FileNotFoundError:
            dest = None  # a concurrent reader already quarantined it
        except OSError as exc:
            raise CertStoreError(
                f"cannot quarantine corrupt entry {key}: {exc}",
                context={"path": path}) from exc
        self.counters["quarantined"] += 1
        record_path = os.path.join(self.dead_letter_dir,
                                   f"{key}.{stamp}.record.json")
        record = {
            "kind": "cert-store-quarantine",
            "key": key,
            "entry_path": path,
            "quarantined_to": dest,
            "error": error.to_record(),
            "time": time.time(),
        }
        try:
            atomic_write_text(record_path,
                              json.dumps(record, sort_keys=True,
                                         indent=2) + "\n")
        except OSError:
            record_path = None
        # a quarantined entry's sweep journal is no longer trusted
        # either: drop it so the fall-through sweep starts from scratch
        shutil.rmtree(os.path.join(self.sweeps_dir, key),
                      ignore_errors=True)
        self._capture_quarantine_bundle(error, dest)
        return record_path

    def _capture_quarantine_bundle(self, error: CertEntryCorrupt,
                                   quarantined_path: Optional[str]
                                   ) -> Optional[str]:
        """Best-effort repro bundle for a quarantined entry."""
        try:
            from repro.bundle import capture_bundle
            files = {}
            if quarantined_path is not None:
                files[os.path.basename(quarantined_path)] = \
                    quarantined_path
            return capture_bundle(
                error, capture_point="certify.store",
                out_dir=self.bundle_dir, journal_files=files)
        except Exception:
            return None  # forensics only; the quarantine already held

    # -- integrity audit ---------------------------------------------------

    def verify_all(self) -> Dict[str, List[str]]:
        """Audit every entry: quarantine what fails, report the rest.

        The chaos-CI invariant check: after any kill schedule, every
        surviving cache file either passes its integrity envelope
        (``ok``) or is quarantined with a typed record (``quarantined``).
        """
        ok: List[str] = []
        quarantined: List[str] = []
        for name in sorted(os.listdir(self.entries_dir)):
            if not name.endswith(".json"):
                continue
            key = name[:-len(".json")]
            if self.get(key) is not None:
                ok.append(key)
            else:
                quarantined.append(key)
        return {"ok": ok, "quarantined": quarantined}

    def dead_letter_records(self) -> List[Dict[str, Any]]:
        """Every quarantine record currently in the dead-letter dir."""
        records = []
        for name in sorted(os.listdir(self.dead_letter_dir)):
            if not name.endswith(".record.json"):
                continue
            path = os.path.join(self.dead_letter_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    records.append(json.load(handle))
            except (OSError, json.JSONDecodeError):
                continue
        return records


def build_cache_payload(key: str, scheme: str,
                        certificate: Mapping[str, Any],
                        fingerprint: Mapping[str, Any],
                        versions: Mapping[str, int],
                        fault_model: Mapping[str, Any],
                        provenance: Optional[Mapping[str, Any]] = None
                        ) -> Dict[str, Any]:
    """Assemble the versioned cached-certificate payload (schema v1)."""
    return {
        "version": CACHE_SCHEMA_VERSION,
        "kind": "swapcodes-cached-certificate",
        "key": key,
        "scheme": scheme,
        "scheme_fingerprint": dict(fingerprint),
        "claim_matrix_version": CLAIM_MATRIX_VERSION,
        "claim_versions": dict(versions),
        "fault_model": dict(fault_model),
        "certificate": dict(certificate),
        "provenance": dict(provenance) if provenance is not None else {
            "parent_key": None, "recertified": sorted(
                (certificate.get("claims") or {})),
            "carried_forward": {}, "carried_strikes_swept": 0},
        "created_at": time.time(),
    }
