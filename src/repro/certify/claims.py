"""The machine-checked claim matrix for SwapCodes schemes.

Each :class:`Claim` binds one of the paper's guarantees to a predicate
over (strike, stored word, read verdict).  A claim *covers* a subset of
the strike space (its ``covers`` hook) and is *violated* when its
``check`` hook returns a description; the certifier sweeps every strike
once and routes it to every applicable claim, so a certificate's swept
counts are per-claim, not per-strike.

The matrix (``claim`` × ``scheme family``):

====================================  =======  =======  ===  ======  ======
claim                                 parity   residue  ted  sd-dp   sec-dp
====================================  =======  =======  ===  ======  ======
detects-all-single-pipeline             X        X       X     X       X
never-miscorrects-pipeline              X        X       X     X       X
detects-all-single-storage              X        X       X     -       -
corrects-all-single-storage             -        -       -     X       X
ded-on-doubles                          -        -       X     X       -
residue-arithmetic-coverage             -        X       -     -       -
batched-read-equivalence                X        X       X     X       X
====================================  =======  =======  ===  ======  ======

(``sd-dp`` covers both check-correction policies; under ``strict`` the
storage-correction claim is scoped to the data and DP segments, since
flagging benign check-bit storage flips as DUEs is that policy's
deliberate availability trade.)

Verdict vocabulary: a strike is *detected* when the read DUEs or returns
the golden value; an *active miscorrection* is a CORRECTED status whose
returned data matches neither the golden value nor the stored data — the
decoder invented a third value, the failure mode the DP bit exists to
close.  Aliasing patterns that pass the stored (wrong) data through
unchanged are coverage gaps, not miscorrections, and are bounded by the
detection claims instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.ecc.hsiao import HsiaoSecDed, TedCode
from repro.ecc.residue import ResidueCode
from repro.ecc.swap import ReadResult, ReadStatus, RegisterWord, SwapScheme
from repro.certify.strikes import (PIPELINE_PLACEMENTS, PLACEMENTS, Strike)

#: version of the claim-*matrix* shape itself (which claims exist, how
#: they scope); bumping it invalidates every cached certificate.
#: Per-claim semantic changes bump the claim's own ``version`` instead,
#: so incremental recertification re-sweeps only the changed claim.
CLAIM_MATRIX_VERSION = 1

#: the scheme-fingerprint components a claim's verdict may depend on
#: (see :func:`repro.certify.store.scheme_fingerprint`).  ``policy`` is
#: the check-correction policy; the rest describe the code itself.
SCHEME_COMPONENTS = ("family", "code", "data_bits", "check_bits",
                     "uses_data_parity", "modulus", "h_matrix", "policy")

#: every component except the check-correction policy.  The detection
#: and miscorrection claims are policy-independent by construction: the
#: ``strict`` policy only ever *converts* benign check-bit corrections
#: into DUEs, and a DUE always counts as detected and can never be a
#: miscorrection, so a policy-only delta cannot invalidate them.
_CODE_COMPONENTS = tuple(c for c in SCHEME_COMPONENTS if c != "policy")


@dataclass(frozen=True)
class Claim:
    """One certifiable guarantee: coverage predicate + violation check.

    ``covers(strike)`` selects the strikes this claim constrains;
    ``check(scheme, strike, base, word, result)`` returns ``None`` when
    the verdict honours the claim and a human-readable violation
    description otherwise.

    The three cache-key fields drive incremental recertification
    (:mod:`repro.certify.store`): ``version`` bumps when the claim's
    *meaning* changes (its predicate, its coverage scoping), ``depends``
    names the scheme-fingerprint components whose delta forces this
    claim to re-sweep, and ``placements`` names the strike placements
    its sweep must enumerate — a partial recertification enumerates
    only the union of the touched claims' placements.
    """

    name: str
    description: str
    covers: Callable[[Strike], bool]
    check: Callable[[SwapScheme, Strike, int, RegisterWord, ReadResult],
                    Optional[str]]
    version: int = 1
    depends: Tuple[str, ...] = SCHEME_COMPONENTS
    placements: Tuple[str, ...] = PLACEMENTS


def claim_versions(claims: Dict[str, "Claim"]) -> Dict[str, int]:
    """The per-claim version map recorded in (and keyed into) the cache."""
    return {name: claim.version for name, claim in claims.items()}


def _is_pipeline(strike: Strike) -> bool:
    return strike.placement in PIPELINE_PLACEMENTS


def _detects(base: int, result: ReadResult) -> bool:
    """Detected: the read DUEd, or the returned data is the golden value."""
    return result.is_due or result.data == base


def _check_single_pipeline(scheme, strike, base, word, result):
    if not _detects(base, result):
        return (f"single pipeline error escaped: status "
                f"{result.status.value}, returned 0x{result.data:x} != "
                f"golden 0x{base:x}")
    return None


def _check_never_miscorrects(scheme, strike, base, word, result):
    if result.status is ReadStatus.CORRECTED \
            and result.data != base and result.data != word.data:
        return (f"active miscorrection: returned 0x{result.data:x} is "
                f"neither golden 0x{base:x} nor stored 0x{word.data:x}")
    return None


def _check_single_storage_detect(scheme, strike, base, word, result):
    if not _detects(base, result):
        return (f"single storage error escaped: status "
                f"{result.status.value}, returned 0x{result.data:x} != "
                f"golden 0x{base:x}")
    return None


def _check_single_storage_correct(scheme, strike, base, word, result):
    if result.is_due:
        return "single storage error raised a DUE instead of correcting"
    if result.data != base:
        return (f"single storage error not repaired: returned "
                f"0x{result.data:x} != golden 0x{base:x}")
    return None


def _check_ded_on_doubles(scheme, strike, base, word, result):
    if not _detects(base, result):
        return (f"double storage error escaped: status "
                f"{result.status.value}, returned 0x{result.data:x} != "
                f"golden 0x{base:x}")
    return None


def _check_residue_arithmetic(scheme, strike, base, word, result):
    modulus = scheme.code.modulus
    expected_due = (word.data % modulus) != (base % modulus)
    if result.is_due != expected_due:
        want = "DUE" if expected_due else "accept"
        got = "DUE" if result.is_due else "accept"
        return (f"arithmetic delta {strike.delta}: residue predicate says "
                f"{want} (stored 0x{word.data:x} mod {modulus} vs golden "
                f"0x{base:x} mod {modulus}) but the read said {got}")
    return None


def _storage_weight_one(scheme: SwapScheme,
                        strict: bool) -> Callable[[Strike], bool]:
    """Coverage for the storage-correction claim, scoped per policy."""
    def covers(strike: Strike) -> bool:
        if strike.placement != "storage" or strike.weight != 1:
            return False
        if strict and strike.check_error:
            # Strict check-correction DUEs benign check-bit storage flips
            # by design; the correction guarantee is scoped to the data
            # and DP segments.
            return False
        return True
    return covers


def claim_matrix(scheme: SwapScheme) -> Dict[str, Claim]:
    """The ordered claims the certifier must check for ``scheme``.

    ``batched-read-equivalence`` is part of every scheme's matrix but is
    evaluated by the certifier's chunked batch pass rather than through
    a per-strike ``check`` hook, so it carries a no-op check here.
    """
    corrects = scheme.uses_data_parity
    strict = getattr(scheme, "check_correction", "accept") == "strict"
    hsiao_family = isinstance(scheme.code, (HsiaoSecDed, TedCode))
    claims: Dict[str, Claim] = {}
    claims["detects-all-single-pipeline"] = Claim(
        "detects-all-single-pipeline",
        "every single-bit pipeline error (original datapath, shadow "
        "datapath, shadow bus, DP generator) raises a DUE or leaves the "
        "returned data golden",
        lambda strike: _is_pipeline(strike) and strike.weight == 1,
        _check_single_pipeline,
        version=1, depends=_CODE_COMPONENTS,
        placements=PIPELINE_PLACEMENTS)
    claims["never-miscorrects-pipeline"] = Claim(
        "never-miscorrects-pipeline",
        "no pipeline error of any swept multiplicity is ever actively "
        "miscorrected (a CORRECTED verdict returning a value that is "
        "neither golden nor the stored data)",
        _is_pipeline,
        _check_never_miscorrects,
        version=1, depends=_CODE_COMPONENTS,
        placements=PIPELINE_PLACEMENTS)
    if corrects:
        claims["corrects-all-single-storage"] = Claim(
            "corrects-all-single-storage",
            "every single-bit storage upset"
            + (" of the data or DP segment" if strict else "")
            + " is repaired in place: no DUE, returned data golden",
            _storage_weight_one(scheme, strict),
            _check_single_storage_correct,
            # the one claim whose coverage and verdicts the
            # check-correction policy reshapes: a policy-only scheme
            # delta re-sweeps exactly this claim
            version=1, depends=SCHEME_COMPONENTS,
            placements=("storage",))
    else:
        claims["detects-all-single-storage"] = Claim(
            "detects-all-single-storage",
            "every single-bit storage upset raises a DUE or leaves the "
            "returned data golden (detect-only schemes never correct)",
            lambda strike: strike.placement == "storage"
            and strike.weight == 1,
            _check_single_storage_detect,
            version=1, depends=_CODE_COMPONENTS,
            placements=("storage",))
    if hsiao_family:
        claims["ded-on-doubles"] = Claim(
            "ded-on-doubles",
            "every double-bit storage upset across the stored word (data, "
            "check, DP) raises a DUE or returns golden data — the "
            "distance-4 double-error-detection guarantee",
            lambda strike: strike.placement == "storage"
            and strike.weight == 2,
            _check_ded_on_doubles,
            version=1, depends=_CODE_COMPONENTS,
            placements=("storage",))
    if isinstance(scheme.code, ResidueCode):
        claims["residue-arithmetic-coverage"] = Claim(
            "residue-arithmetic-coverage",
            "the read verdict on arithmetic value errors matches the "
            "residue predicate exactly: DUE iff the stored value's "
            "residue differs from the golden residue (all non-wrapping "
            "±2^k errors are therefore detected, since no power of two "
            "is a multiple of 2^a - 1)",
            lambda strike: strike.placement == "arithmetic",
            _check_residue_arithmetic,
            version=1,
            depends=("family", "code", "data_bits", "modulus", "h_matrix"),
            placements=("arithmetic",))
    claims["batched-read-equivalence"] = Claim(
        "batched-read-equivalence",
        "the vectorized read port (read_many) agrees with the scalar "
        "read bit-for-bit on every swept strike, evaluated in warp-sized "
        "correlated batches",
        lambda strike: True,
        lambda scheme, strike, base, word, result: None,
        # policy-independent: both read ports apply the policy through
        # the same decode tables *after* status computation, so the
        # equivalence claim certifies the batching transformation, which
        # a policy-only delta cannot perturb
        version=1, depends=_CODE_COMPONENTS,
        placements=PLACEMENTS)
    return claims
