"""Strike-space enumeration for the guarantee certifier.

A :class:`Strike` describes one adversarial event against a SwapCodes
register in terms of *where the error entered* (the Figure 5 placements),
not just which stored bits differ — the same stored-bit flip means
different things depending on whether the original instruction, the
shadow, or the register-file array produced it, and the claim matrix is
stated per placement:

* ``pipeline-original`` — the original instruction computed a wrong
  value: the data segment and (for DP schemes) the data-parity bit both
  describe the corrupted value, while the shadow's check bits describe
  the true one.
* ``pipeline-shadow-value`` — the shadow computed a wrong value: clean
  data and DP, check bits of the wrong value.
* ``pipeline-shadow-bus`` — the shadow's writeback bus was struck: clean
  data and DP, check bits with raw flipped wires.
* ``pipeline-dp`` — the DP-generation path was struck: clean data and
  check, flipped data-parity bit.
* ``storage`` — the completed register was struck at rest: any subset of
  stored bits (data, check, DP) flips under encodings of the true value.
* ``arithmetic`` — a value-domain error ``data' = data + delta mod 2^w``
  with clean check bits, probing the residue codes' arithmetic coverage.

Enumerators below yield strikes in increasing weight so the first
violation an exhaustive sweep finds is already weight-minimal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace as _replace
from itertools import combinations
from typing import Iterator, Sequence, Tuple

from repro.bitutils import mask, popcount
from repro.ecc.swap import RegisterWord, SwapScheme
from repro.errors import CertificationError

#: version of the strike-space *shape* — the enumerators, their tiers,
#: and their parameter semantics.  Part of the fault-model fingerprint a
#: cached certificate is keyed under: a certificate is only valid for
#: the strike space it was swept against, so changing an enumerator
#: must bump this and thereby invalidate every cached entry.
STRIKE_SPACE_VERSION = 1

#: the error-entry placements a Strike may name, in sweep order
PLACEMENTS = ("pipeline-original", "pipeline-shadow-value",
              "pipeline-shadow-bus", "pipeline-dp", "storage", "arithmetic")

#: placements that model a *pipeline* (compute/writeback) error
PIPELINE_PLACEMENTS = ("pipeline-original", "pipeline-shadow-value",
                       "pipeline-shadow-bus", "pipeline-dp")


@dataclass(frozen=True)
class Strike:
    """One adversarial event against a SwapCodes register.

    ``data_error``/``check_error`` are XOR masks over the data and check
    segments (whichever the placement touches), ``dp_error`` flips the
    data-parity bit, and ``delta`` is the signed value-domain error of an
    ``arithmetic`` strike.  ``tier`` records which enumeration produced
    it (``exhaustive``, ``burst``, ``random``, ``arithmetic``) for the
    certificate's sweep accounting.
    """

    placement: str
    data_error: int = 0
    check_error: int = 0
    dp_error: int = 0
    delta: int = 0
    tier: str = "exhaustive"

    def __post_init__(self):
        if self.placement not in PLACEMENTS:
            raise CertificationError(
                f"unknown strike placement {self.placement!r}")

    @property
    def weight(self) -> int:
        """Total number of flipped bits (value errors count their mask)."""
        return (popcount(self.data_error) + popcount(self.check_error)
                + self.dp_error)

    def describe(self) -> dict:
        """JSON-serializable description for certificate counterexamples."""
        out = {"placement": self.placement, "tier": self.tier}
        if self.data_error:
            out["data_error"] = f"0x{self.data_error:x}"
        if self.check_error:
            out["check_error"] = f"0x{self.check_error:x}"
        if self.dp_error:
            out["dp_error"] = 1
        if self.placement == "arithmetic":
            out["delta"] = self.delta
        return out


def apply_strike(scheme: SwapScheme, base: int,
                 strike: Strike) -> RegisterWord:
    """The stored register word after ``strike`` hits a pair writing ``base``.

    Built through the scheme's own write API (``write_original`` /
    ``write_shadow`` / ``storage_strike_mask``) so the certifier
    exercises exactly the machinery the simulator uses; the golden value
    is always ``base``.
    """
    data_bits = scheme.data_bits
    base &= mask(data_bits)
    if strike.placement == "pipeline-original":
        wrong = base ^ strike.data_error
        return scheme.write_shadow(scheme.write_original(wrong), base)
    if strike.placement == "pipeline-shadow-value":
        wrong = base ^ strike.data_error
        return scheme.write_shadow(scheme.write_original(base), wrong)
    if strike.placement == "pipeline-shadow-bus":
        return scheme.write_pair(base).with_check_error(strike.check_error)
    if strike.placement == "pipeline-dp":
        return scheme.write_pair(base).with_dp_error()
    if strike.placement == "storage":
        word = scheme.write_pair(base)
        if strike.data_error:
            word = word.with_data_error(strike.data_error)
        if strike.check_error:
            word = word.with_check_error(strike.check_error)
        if strike.dp_error:
            word = word.with_dp_error()
        return word
    # arithmetic: a value-domain error with clean check bits
    wrong = (base + strike.delta) % (1 << data_bits)
    word = scheme.write_pair(base)
    return word.with_data_error(word.data ^ wrong)


def _bit_masks(width: int, weight: int) -> Iterator[int]:
    """All ``width``-bit masks of exactly ``weight`` set bits."""
    for bits in combinations(range(width), weight):
        yield sum(1 << bit for bit in bits)


def exhaustive_pipeline_strikes(scheme: SwapScheme,
                                max_weight: int = 2) -> Iterator[Strike]:
    """Every pipeline strike of weight 1..``max_weight``, weight-ascending.

    A single pipeline error corrupts one producer — the original's
    datapath, the shadow's datapath, the shadow's writeback bus, or the
    DP generator — so multi-bit patterns stay confined to one segment
    (the swap invariant the paper's guarantees are stated under).
    """
    data_bits = scheme.data_bits
    check_bits = scheme.code.check_bits
    for weight in range(1, max_weight + 1):
        for error in _bit_masks(data_bits, weight):
            yield Strike("pipeline-original", data_error=error)
            yield Strike("pipeline-shadow-value", data_error=error)
        for error in _bit_masks(check_bits, weight):
            yield Strike("pipeline-shadow-bus", check_error=error)
        if weight == 1 and scheme.uses_data_parity:
            yield Strike("pipeline-dp", dp_error=1)


def exhaustive_storage_strikes(scheme: SwapScheme,
                               max_weight: int = 2) -> Iterator[Strike]:
    """Every storage strike of weight 1..``max_weight``, weight-ascending.

    Storage strikes hit the register array at rest, so the pattern may
    span the data, check, and DP segments freely — including the
    data+check doubles that probe the miscorrection boundary.
    """
    data_bits = scheme.data_bits
    check_bits = scheme.code.check_bits
    stored_bits = data_bits + check_bits + (1 if scheme.uses_data_parity
                                            else 0)
    for weight in range(1, max_weight + 1):
        for bits in combinations(range(stored_bits), weight):
            data_error = 0
            check_error = 0
            dp_error = 0
            for bit in bits:
                if bit < data_bits:
                    data_error |= 1 << bit
                elif bit < data_bits + check_bits:
                    check_error |= 1 << (bit - data_bits)
                else:
                    dp_error = 1
            yield Strike("storage", data_error=data_error,
                         check_error=check_error, dp_error=dp_error)


def burst_strikes(scheme: SwapScheme,
                  widths: Sequence[int] = (3, 4)) -> Iterator[Strike]:
    """Contiguous ``widths``-bit bursts at every position (MBU patterns).

    Field studies report multi-bit upsets as short physically-adjacent
    bursts; these sweep every burst placement over the data segment
    (pipeline and storage) and the check segment (shadow bus, storage).
    """
    data_bits = scheme.data_bits
    check_bits = scheme.code.check_bits
    for width in widths:
        for start in range(0, max(1, data_bits - width + 1)):
            error = (mask(width) << start) & mask(data_bits)
            if not error:
                continue
            yield Strike("pipeline-original", data_error=error,
                         tier="burst")
            yield Strike("pipeline-shadow-value", data_error=error,
                         tier="burst")
            yield Strike("storage", data_error=error, tier="burst")
        for start in range(0, max(1, check_bits - width + 1)):
            error = (mask(width) << start) & mask(check_bits)
            if not error:
                continue
            yield Strike("pipeline-shadow-bus", check_error=error,
                         tier="burst")
            yield Strike("storage", check_error=error, tier="burst")


def random_strikes(scheme: SwapScheme, rng: random.Random, count: int,
                   weights: Sequence[int] = (3, 4)) -> Iterator[Strike]:
    """Stratified random multi-bit strikes beyond the exhaustive tier.

    Samples ``count`` strikes per (weight, placement-family) stratum:
    pipeline value errors, shadow-bus patterns, and cross-segment
    storage patterns — the spaces too large to sweep exhaustively.
    """
    data_bits = scheme.data_bits
    check_bits = scheme.code.check_bits
    stored_bits = data_bits + check_bits + (1 if scheme.uses_data_parity
                                            else 0)
    for weight in weights:
        for _ in range(count):
            bits = rng.sample(range(data_bits), weight)
            error = sum(1 << bit for bit in bits)
            yield Strike("pipeline-original", data_error=error,
                         tier="random")
            yield Strike("pipeline-shadow-value", data_error=error,
                         tier="random")
        if weight <= check_bits:
            for _ in range(count):
                bits = rng.sample(range(check_bits), weight)
                yield Strike("pipeline-shadow-bus",
                             check_error=sum(1 << bit for bit in bits),
                             tier="random")
        for _ in range(count):
            bits = rng.sample(range(stored_bits), weight)
            data_error = sum(1 << bit for bit in bits if bit < data_bits)
            check_error = sum(1 << (bit - data_bits) for bit in bits
                              if data_bits <= bit < data_bits + check_bits)
            dp_error = int(any(bit >= data_bits + check_bits
                               for bit in bits))
            yield Strike("storage", data_error=data_error,
                         check_error=check_error, dp_error=dp_error,
                         tier="random")


def arithmetic_strikes(scheme: SwapScheme, rng: random.Random,
                       random_count: int = 32) -> Iterator[Strike]:
    """Value-domain errors probing residue arithmetic-fault coverage.

    Sweeps every ``±2^k`` (the single-wire datapath errors all residue
    moduli must catch when no wraparound intervenes), small multiples of
    the checking modulus (the aliasing patterns the predicate must
    *accept* as undetectable), and seeded random deltas.
    """
    data_bits = scheme.data_bits
    modulus = getattr(scheme.code, "modulus", None)
    for k in range(data_bits):
        yield Strike("arithmetic", delta=1 << k, tier="arithmetic")
        yield Strike("arithmetic", delta=-(1 << k), tier="arithmetic")
    if modulus is not None:
        for j in range(1, 5):
            yield Strike("arithmetic", delta=modulus * j, tier="arithmetic")
            yield Strike("arithmetic", delta=-modulus * j,
                         tier="arithmetic")
    limit = 1 << data_bits
    for _ in range(random_count):
        delta = rng.randrange(1, limit)
        if rng.random() < 0.5:
            delta = -delta
        yield Strike("arithmetic", delta=delta, tier="arithmetic")


def correlated_lane_batch(scheme: SwapScheme, base_values: Sequence[int],
                          strike: Strike) -> Tuple[list, list]:
    """A warp's worth of (word, golden) pairs under one correlated event.

    Models the row/column-correlated MBU signature: the *same* strike
    pattern lands in every lane of the batch (adjacent datapath lanes
    share the struck physical row), so a scheme's batched read port must
    flag each lane exactly as it would a lone scalar read.
    """
    words = []
    goldens = []
    for base in base_values:
        words.append(apply_strike(scheme, base, strike))
        goldens.append(base & mask(scheme.data_bits))
    return words, goldens


def shrink_strike(strike: Strike) -> Iterator[Strike]:
    """Candidate one-bit-smaller strikes, for counterexample minimization.

    Yields every strike obtained by clearing a single set bit (or the DP
    flip); the certifier keeps shrinking while the violation persists,
    so recorded counterexamples are locally minimal.
    """
    for bit in range(strike.data_error.bit_length()):
        if strike.data_error >> bit & 1:
            candidate = _replace(strike,
                                 data_error=strike.data_error ^ (1 << bit))
            if candidate.weight:
                yield candidate
    for bit in range(strike.check_error.bit_length()):
        if strike.check_error >> bit & 1:
            candidate = _replace(strike,
                                 check_error=strike.check_error ^ (1 << bit))
            if candidate.weight:
                yield candidate
    if strike.dp_error:
        candidate = _replace(strike, dp_error=0)
        if candidate.weight:
            yield candidate
