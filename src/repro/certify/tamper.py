"""Deliberately broken schemes proving the certifier catches regressions.

A certifier that only ever says "certified" is indistinguishable from one
that checks nothing.  These factories build schemes with known, precisely
located defects — a parity-check column zeroed out, two columns
duplicated — by bypassing :class:`~repro.ecc.linear.LinearCode`'s
constructor validation (the same ``__new__`` route
:meth:`~repro.ecc.hsiao.HsiaoSecDed.low_alias` uses for its custom
columns).  The acceptance tests certify each tampered scheme and assert
a FAILED certificate carrying a weight-minimal counterexample naming the
sabotaged bit.

Test-only: nothing here is registered in the certification registry.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.ecc.hsiao import HsiaoSecDed
from repro.ecc.linear import LinearCode, odd_weight_columns
from repro.ecc.swap import SecDedDpSwap
from repro.errors import CertificationError


def _hsiao_with_columns(columns, name: str) -> HsiaoSecDed:
    """A (39,32) Hsiao instance over raw columns, skipping validation.

    ``LinearCode.__init__`` rejects zero, duplicate, and unit-weight
    columns — exactly the defects we need to plant — so the instance is
    assembled around the validator, mirroring how a buggy column-search
    or table-cache regression would corrupt a real code.
    """
    code = HsiaoSecDed.__new__(HsiaoSecDed)
    code.name = name
    code.data_bits = len(columns)
    code.check_bits = 7
    code.data_columns = list(columns)
    code._syndrome_map = {
        column: index for index, column in enumerate(code.data_columns)
        if column != 0
    }
    for bit in range(code.check_bits):
        code._syndrome_map[1 << bit] = code.data_bits + bit
    return code


def tampered_secded_dp(kind: str = "zero-column",
                       position: int = 11) -> SecDedDpSwap:
    """A SEC-DED-DP scheme whose code has one sabotaged parity column.

    ``kind`` selects the defect at data bit ``position``:

    * ``"zero-column"`` — the column is zeroed: a strike on that data bit
      produces a zero syndrome, so single pipeline errors there are
      *invisible* and escape as silent data corruption (violating
      ``detects-all-single-pipeline`` at weight 1 — caught by the fast
      exhaustive sweep).
    * ``"duplicate-column"`` — the column duplicates its neighbour's:
      strikes on the two bits produce identical syndromes, so the decoder
      repairs the wrong bit half the time (an active miscorrection under
      storage strikes, violating ``corrects-all-single-storage``).
    """
    base = odd_weight_columns(7, 32)
    columns = list(base)
    if not 0 <= position < len(columns):
        raise CertificationError(
            f"tamper position {position} outside the 32-bit data segment")
    if kind == "zero-column":
        columns[position] = 0
    elif kind == "duplicate-column":
        neighbour = (position + 1) % len(columns)
        columns[position] = columns[neighbour]
    else:
        raise CertificationError(
            f"unknown tamper kind {kind!r}; expected 'zero-column' or "
            f"'duplicate-column'")
    code = _hsiao_with_columns(columns, f"secded-39-32-tampered-{kind}")
    scheme = SecDedDpSwap(code)
    scheme.name = f"secded-dp-tampered-{kind}"
    return scheme


#: tamper factory name -> builder (the certification tamper registry;
#: deliberately *not* part of the scheme registry)
TAMPER_FACTORIES = {
    "secded-dp": tampered_secded_dp,
}


def build_tampered_scheme(spec: Union[str, Dict[str, Any]]) -> SecDedDpSwap:
    """Rebuild a tampered scheme from a JSON-serializable *spec*.

    ``spec`` is either a factory name or a dict ``{"factory": name,
    "kind": ..., "position": ...}`` (the form repro bundles serialize),
    so a FAILED certificate exported as a bundle reconstructs the exact
    defective scheme — and its weight-minimal counterexample — from the
    manifest alone.
    """
    if isinstance(spec, str):
        spec = {"factory": spec}
    if not isinstance(spec, dict) or "factory" not in spec:
        raise CertificationError(
            f"tamper spec must be a factory name or {{'factory': name}} "
            f"dict, got {spec!r}")
    name = spec["factory"]
    factory = TAMPER_FACTORIES.get(name)
    if factory is None:
        raise CertificationError(
            f"unknown tamper factory {name!r}; choose from "
            f"{sorted(TAMPER_FACTORIES)}")
    kwargs = {key: value for key, value in spec.items() if key != "factory"}
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise CertificationError(
            f"bad tamper spec for factory {name!r}: {exc}") from None
