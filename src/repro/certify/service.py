"""Certification-as-a-service over the campaign transport fabric.

:class:`CertificateService` answers "is this scheme certified under
this fault model?" from the :class:`~repro.certify.store.CertificateStore`
when it can and from a supervised certify sweep when it must:

* **hit** — the store holds a verified entry for the exact cache key;
  it is served byte-identically, no sweep runs.
* **incremental** — the scheme (or claim matrix) drifted from the
  newest cached certificate, but :func:`~repro.certify.store.touched_claims`
  proves only a subset of claims could have changed verdicts.  Only
  those claims' strike tiers re-sweep (a claim-subset
  :func:`~repro.inject.engine.certify_work_unit`); untouched claims are
  stitched forward with provenance.
* **miss** — no usable prior; a full sweep runs through the
  :class:`~repro.inject.engine.CampaignEngine`, journaled under the
  store's ``sweeps/<key>/`` so a SIGKILLed sweep resumes instead of
  restarting.
* **stale** — another process holds the key's single-flight lock.
  Graceful degradation serves the newest prior certificate marked
  ``staleness: {reason, superseded_by_key, age_s}``; ``strict=True``
  turns that into a typed :class:`~repro.errors.StaleCertificate`
  refusal instead (strict callers then wait on the lock).

The service also speaks the campaign frame protocol
(:mod:`repro.inject.transport`): :meth:`serve` accepts connections from
any listener — :class:`~repro.inject.transport.InProcessTransport`,
:class:`~repro.inject.transport.UnixSocketListener`, or a chaos-wrapped
dialer on the client side — and answers ``certify`` / ``stats`` /
``shutdown`` messages with ``certificate`` / ``refusal`` / ``error``
replies, so remote clients get the same typed degradation story local
callers do.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.errors import (CertificationError, CertStoreError, FrameError,
                          ReproError, StaleCertificate, TransportClosed)
from repro.certify.claims import claim_matrix
from repro.certify.engine import certification_registry
from repro.certify.store import (CertificateStore, build_cache_payload,
                                 scheme_cache_identity, stitch_certificate,
                                 touched_claims)

__all__ = ["ServedCertificate", "CertificateService"]


@dataclass
class ServedCertificate:
    """One answer from the service: the payload plus how it was served.

    ``cache`` is one of ``hit`` (served verbatim from the store),
    ``miss`` (full sweep ran), ``incremental`` (partial re-sweep,
    untouched claims carried forward), or ``stale`` (prior certificate
    served under degradation, see ``staleness``).
    """

    payload: Dict[str, Any]
    key: str
    cache: str
    staleness: Optional[Dict[str, Any]] = None

    def to_message(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"kind": "certificate", "key": self.key,
                                "cache": self.cache,
                                "payload": self.payload}
        if self.staleness is not None:
            body["staleness"] = self.staleness
        return body


class CertificateService:
    """Serve certificates from the store, sweeping only when needed.

    One instance is safe to share across threads (the transport loop
    spawns a thread per connection); cross-*process* single-flight is
    the store's fcntl key lock.  ``engine_config`` overrides the sweep
    engine knobs — statistical knobs must stay fixed across the life of
    a cache dir, since resumed sweep journals pin them.
    """

    def __init__(self, store: CertificateStore, mode: str = "fast",
                 seed: int = 0, strict: bool = False,
                 engine_config: Any = None,
                 registry: Optional[Mapping[str, Callable[[], Any]]] = None,
                 lock_timeout_s: float = 120.0):
        self.store = store
        self.mode = mode
        self.seed = seed
        self.strict = strict
        self.lock_timeout_s = lock_timeout_s
        self._engine_config = engine_config
        self._registry = dict(registry) if registry is not None \
            else certification_registry()
        self._counter_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "incremental": 0, "stale_served": 0,
            "refusals": 0, "sweeps": 0}

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self.counters[name] += 1

    def stats(self) -> Dict[str, int]:
        with self._counter_lock:
            merged = dict(self.counters)
        merged["quarantined"] = self.store.counters["quarantined"]
        return merged

    # -- the lookup path ---------------------------------------------------

    def lookup(self, scheme_name: str,
               strict: Optional[bool] = None) -> ServedCertificate:
        """Serve ``scheme_name``'s certificate, sweeping if needed."""
        if scheme_name not in self._registry:
            raise CertificationError(
                f"unknown scheme {scheme_name!r}; registered: "
                f"{sorted(self._registry)}")
        strict = self.strict if strict is None else strict
        scheme = self._registry[scheme_name]()
        fingerprint, versions, fault_model, key = scheme_cache_identity(
            scheme, self.mode, self.seed)
        cached = self.store.get(key)
        if cached is not None:
            self._count("hits")
            return ServedCertificate(cached, key, "hit")
        lock = self.store.lock(key)
        if not lock.acquire(blocking=False):
            # someone else is sweeping this key right now
            degraded = self._serve_stale(scheme_name, key, strict)
            if degraded is not None:
                return degraded
            # no prior to degrade onto (or strict): wait our turn
            if not lock.acquire(blocking=True,
                                timeout_s=self.lock_timeout_s,
                                seed=self.seed):
                raise CertStoreError(
                    f"timed out after {self.lock_timeout_s}s waiting "
                    f"for the in-flight sweep of {scheme_name} "
                    f"(key {key[:12]}...)",
                    context={"scheme": scheme_name, "key": key})
        try:
            # double-check under the lock: the sweep we waited out (or
            # raced) may have published the entry already
            cached = self.store.get(key)
            if cached is not None:
                self._count("hits")
                return ServedCertificate(cached, key, "hit")
            return self._certify_under_lock(
                scheme_name, scheme, key, fingerprint, versions,
                fault_model)
        finally:
            lock.release()

    def _serve_stale(self, scheme_name: str, superseding_key: str,
                     strict: bool) -> Optional[ServedCertificate]:
        """Degrade onto the newest prior certificate, or refuse."""
        prior = self.store.latest(scheme_name)
        if prior is None:
            return None
        prior_key, created_at, payload = prior
        staleness = {
            "reason": "sweep_in_flight",
            "superseded_by_key": superseding_key,
            "age_s": max(0.0, time.time() - created_at),
        }
        if strict:
            self._count("refusals")
            raise StaleCertificate(
                f"certificate for {scheme_name} is stale (a sweep for "
                f"key {superseding_key[:12]}... is in flight) and "
                f"strict mode refuses degraded service",
                context={"scheme": scheme_name, "stale_key": prior_key,
                         "staleness": staleness})
        self._count("stale_served")
        return ServedCertificate(payload, prior_key, "stale",
                                 staleness=staleness)

    def _certify_under_lock(self, scheme_name: str, scheme: Any,
                            key: str, fingerprint: Mapping[str, Any],
                            versions: Mapping[str, int],
                            fault_model: Mapping[str, Any]
                            ) -> ServedCertificate:
        """Sweep (fully or incrementally) and publish the entry."""
        claims = claim_matrix(scheme)
        prior = self.store.latest(scheme_name)
        touched = None
        parent_key = None
        prior_payload: Optional[Dict[str, Any]] = None
        if prior is not None and prior[0] != key:
            parent_key, _, prior_payload = prior
            touched = touched_claims(prior_payload, fingerprint,
                                     versions, fault_model, claims)
        if touched is not None and len(touched) < len(claims):
            if touched:
                partial = self._sweep(scheme_name, scheme, key,
                                      only=sorted(touched))
            else:
                # the delta sits in fingerprint components no claim
                # depends on: nothing to re-sweep, carry it all forward
                partial = {part: value for part, value in
                           (prior_payload.get("certificate") or {}).items()
                           if part != "claims"}
                partial["claims"] = {}
                partial["strikes_swept"] = 0
                partial["tiers"] = {}
            certificate, provenance = stitch_certificate(
                partial, prior_payload, touched, parent_key)
            cache_state = "incremental"
            self._count("incremental")
        else:
            certificate = self._sweep(scheme_name, scheme, key)
            provenance = None
            cache_state = "miss"
            self._count("misses")
        payload = build_cache_payload(key, scheme_name, certificate,
                                      fingerprint, versions, fault_model,
                                      provenance)
        self.store.put(key, payload)
        self.store.set_latest(scheme_name, key)
        return ServedCertificate(payload, key, cache_state)

    def _sweep(self, scheme_name: str, scheme: Any, key: str,
               only: Optional[Sequence[str]] = None) -> Dict[str, Any]:
        """One supervised certify sweep; the certificate dict comes back.

        The engine journal lives under the store's ``sweeps/<key>/``,
        so a service killed mid-sweep resumes the sweep on the next
        request for the same key rather than starting over — and a
        *finished* journal replays to the identical certificate without
        re-enumerating a single strike.
        """
        from repro.inject.engine import (CampaignEngine, EngineConfig,
                                         certify_work_unit)
        self._count("sweeps")
        config = self._engine_config
        if config is None:
            config = EngineConfig(batch_size=1, max_batches=1,
                                  ci_half_width=None, timeout_s=None,
                                  isolation="inline")
        unit = certify_work_unit(scheme_name, mode=self.mode,
                                 seed=self.seed, scheme_instance=scheme,
                                 claims=only)
        journal_path = self.store.sweep_journal(key)
        report = CampaignEngine(config).run(
            [unit], journal_path,
            journal_header={"kind": "cert-service-sweep", "key": key,
                            "scheme": scheme_name, "mode": self.mode,
                            "seed": self.seed,
                            "claims": sorted(only) if only else None})
        unit_report = report.units[unit.unit_id]
        if unit_report.status != "completed" or not unit_report.payloads:
            raise CertificationError(
                f"certify sweep for {scheme_name} (key {key[:12]}...) "
                f"ended {unit_report.status!r}: {unit_report.detail}",
                context={"scheme": scheme_name, "key": key,
                         "status": unit_report.status})
        return unit_report.payloads[-1]

    # -- the transport loop ------------------------------------------------

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one protocol message (also the unit-test seam).

        ``certify`` serves a certificate (honoring a per-request
        ``strict`` override); typed errors come back as ``refusal``
        (recoverable degradation, e.g. strict-mode staleness) or
        ``error`` (everything else), both carrying the full
        ``error.to_record()`` so remote callers keep the taxonomy.
        """
        kind = message.get("kind")
        if kind == "certify":
            scheme_name = message.get("scheme")
            strict = message.get("strict")
            try:
                served = self.lookup(scheme_name,
                                     strict=None if strict is None
                                     else bool(strict))
            except StaleCertificate as exc:
                return {"kind": "refusal", "scheme": scheme_name,
                        "error": exc.to_record()}
            except ReproError as exc:
                return {"kind": "error", "scheme": scheme_name,
                        "error": exc.to_record()}
            return served.to_message()
        if kind == "stats":
            return {"kind": "stats", "counters": self.stats()}
        if kind == "shutdown":
            return {"kind": "bye"}
        return {"kind": "error",
                "error": {"code": "certify.store",
                          "message": f"unknown message kind {kind!r}"}}

    def serve(self, listener: Any,
              stop: Optional[threading.Event] = None,
              poll_s: float = 0.2) -> None:
        """Accept and answer connections until ``stop`` (or shutdown).

        Works with any listener exposing ``accept(timeout)`` —
        in-process, Unix socket, or a chaos-wrapped transport.  Each
        connection gets its own thread; a ``shutdown`` message stops
        the whole loop after answering.
        """
        stop = stop if stop is not None else threading.Event()
        workers = []
        try:
            while not stop.is_set():
                try:
                    connection = listener.accept(timeout=poll_s)
                except TransportClosed:
                    break
                if connection is None:
                    continue
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(connection, stop), daemon=True)
                thread.start()
                workers.append(thread)
        finally:
            for thread in workers:
                thread.join(timeout=5.0)

    def _serve_connection(self, connection: Any,
                          stop: threading.Event) -> None:
        try:
            while not stop.is_set():
                try:
                    message = connection.recv(timeout=0.2)
                except (TransportClosed, FrameError):
                    return
                if message is None:
                    continue
                response = self.handle(message)
                try:
                    connection.send(response)
                except TransportClosed:
                    return
                if message.get("kind") == "shutdown":
                    stop.set()
                    return
        finally:
            try:
                connection.close()
            except Exception:
                pass
