"""Machine-checked guarantee certification for every code/scheme pair.

The paper's central results are *guarantees*, not averages — 100% single
pipeline error detection, storage correction without pipeline
miscorrection — and sampling campaigns exercise them without certifying
them.  This package sweeps each registered scheme's strike space
(exhaustively for 1- and 2-bit strikes across every Figure 5 placement,
adversarially for bursts and random multi-bit patterns) and emits a
versioned ``CERTIFICATE_<scheme>.json`` recording each claim's verdict,
swept space, and minimal counterexample if violated::

    from repro.certify import certify_scheme, write_certificate

    certificate = certify_scheme("secded-dp", mode="fast")
    assert certificate.passed
    write_certificate(certificate, out_dir="artifacts")

See :mod:`repro.certify.claims` for the claim matrix,
:mod:`repro.certify.strikes` for the strike spaces, and
:mod:`repro.certify.tamper` for the deliberately broken schemes that
prove the certifier can fail.
"""

from repro.certify.claims import (CLAIM_MATRIX_VERSION, Claim, claim_matrix,
                                  claim_versions)
from repro.certify.engine import (CERTIFICATE_SCHEMA_VERSION, Certificate,
                                  Certifier, ClaimReport,
                                  capture_certificate_bundle,
                                  certification_registry, certify_all,
                                  certify_scheme, make_certified_scheme,
                                  validate_artifact_dir, write_certificate)
from repro.certify.service import CertificateService, ServedCertificate
from repro.certify.store import (CACHE_SCHEMA_VERSION, CertificateStore,
                                 certificate_key, fault_model_fingerprint,
                                 scheme_fingerprint, stitch_certificate,
                                 touched_claims)
from repro.certify.strikes import (PIPELINE_PLACEMENTS, PLACEMENTS,
                                   STRIKE_SPACE_VERSION, Strike,
                                   apply_strike, arithmetic_strikes,
                                   burst_strikes, correlated_lane_batch,
                                   exhaustive_pipeline_strikes,
                                   exhaustive_storage_strikes, random_strikes)
from repro.certify.tamper import build_tampered_scheme, tampered_secded_dp

__all__ = [
    "CACHE_SCHEMA_VERSION", "CERTIFICATE_SCHEMA_VERSION",
    "CLAIM_MATRIX_VERSION", "Certificate", "CertificateService",
    "CertificateStore", "Certifier", "Claim", "ClaimReport",
    "PIPELINE_PLACEMENTS", "PLACEMENTS", "STRIKE_SPACE_VERSION",
    "ServedCertificate", "Strike", "apply_strike", "arithmetic_strikes",
    "build_tampered_scheme", "burst_strikes", "capture_certificate_bundle",
    "certificate_key", "certification_registry", "certify_all",
    "certify_scheme", "claim_matrix", "claim_versions",
    "correlated_lane_batch", "exhaustive_pipeline_strikes",
    "exhaustive_storage_strikes", "fault_model_fingerprint",
    "make_certified_scheme", "random_strikes", "scheme_fingerprint",
    "stitch_certificate", "tampered_secded_dp", "touched_claims",
    "validate_artifact_dir", "write_certificate",
]
