"""The guarantee certifier: sweeps strike spaces and emits certificates.

For each registered scheme the :class:`Certifier` machine-checks the
claim matrix of :mod:`repro.certify.claims` by exhaustive sweep where
tractable (every 1- and 2-bit strike across every Figure 5 placement,
``fast`` mode) and stratified adversarial search where not (contiguous
bursts, seeded random multi-bit patterns, arithmetic deltas — added in
``full`` mode).  Every strike is evaluated twice — once through the
scalar read port and once through ``read_many`` in warp-sized correlated
batches — so the batched codec layer is certified against the scalar
reference as a first-class claim, not a side effect.

The result is a versioned :class:`Certificate` recording, per claim, the
verdict, the swept space size, and a weight-minimal counterexample when
violated; :func:`write_certificate` serializes it as
``CERTIFICATE_<scheme>.json``, the artifact CI gates on.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.bitutils import mask
from repro.errors import CertificationError, InvalidArgument
from repro.inject.journal import atomic_write_text
from repro.ecc.swap import (READ_STATUS_TO_CODE, ReadResult, RegisterWord,
                            SwapScheme)
from repro.certify.claims import Claim, claim_matrix
from repro.certify.strikes import (Strike, apply_strike, arithmetic_strikes,
                                   burst_strikes,
                                   exhaustive_pipeline_strikes,
                                   exhaustive_storage_strikes,
                                   random_strikes, shrink_strike)

#: schema version of the CERTIFICATE_*.json artifact
CERTIFICATE_SCHEMA_VERSION = 1

#: batch size of the correlated read_many equivalence pass — one warp
WARP_LANES = 32

#: default base data words swept under every strike (patterns that
#: exercise all-zero, all-one, and alternating bit neighborhoods; seeded
#: random words are appended per run)
BASE_PATTERNS = (0x0000_0000, 0xFFFF_FFFF, 0xAAAA_AAAA, 0x5555_5555,
                 0xDEAD_BEEF)


def certification_registry() -> Dict[str, Callable[[], SwapScheme]]:
    """Every registered scheme the certifier must pass, by campaign name.

    The spellings match :func:`repro.inject.engine.make_scheme` (with
    ``secded-dp-strict`` extending it for the strict check-correction
    policy).  The miscorrecting :class:`~repro.ecc.swap.NaiveSecDedSwap`
    strawman is deliberately *not* registered — it exists to fail, and
    the tamper tests certify that the certifier catches it.
    """
    from repro.ecc import (DetectOnlySwap, LOW_COST_MODULI, ParityCode,
                           ResidueCode, SecDedDpSwap, SecDpSwap, TedCode)
    registry: Dict[str, Callable[[], SwapScheme]] = {
        "parity": lambda: DetectOnlySwap(ParityCode()),
    }
    for modulus in LOW_COST_MODULI:
        registry[f"mod{modulus}"] = \
            (lambda m=modulus: DetectOnlySwap(ResidueCode(m)))
    registry["ted"] = lambda: DetectOnlySwap(TedCode())
    registry["secded-dp"] = lambda: SecDedDpSwap()
    registry["secded-dp-strict"] = \
        lambda: SecDedDpSwap(check_correction="strict")
    registry["sec-dp"] = lambda: SecDpSwap()
    return registry


def make_certified_scheme(name: str) -> SwapScheme:
    """Instantiate a registered scheme by name, or raise."""
    registry = certification_registry()
    if name not in registry:
        raise CertificationError(
            f"unknown scheme {name!r}; registered: {sorted(registry)}")
    return registry[name]()


@dataclass
class ClaimReport:
    """One claim's certification outcome."""

    name: str
    description: str
    verdict: str = "certified"  # or "violated"
    swept: int = 0
    violations: int = 0
    counterexample: Optional[dict] = None

    def to_dict(self) -> dict:
        return {"verdict": self.verdict, "swept": self.swept,
                "violations": self.violations,
                "counterexample": self.counterexample,
                "description": self.description}


@dataclass
class Certificate:
    """The versioned certification artifact for one scheme."""

    scheme: str
    code: str
    mode: str
    seed: int
    claims: Dict[str, ClaimReport]
    strikes_swept: int = 0
    base_words: int = 0
    tiers: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violated

    @property
    def violated(self) -> List[str]:
        return [name for name, report in self.claims.items()
                if report.verdict == "violated"]

    def to_dict(self) -> dict:
        return {
            "version": CERTIFICATE_SCHEMA_VERSION,
            "kind": "swapcodes-guarantee-certificate",
            "scheme": self.scheme,
            "code": self.code,
            "mode": self.mode,
            "seed": self.seed,
            "base_words": self.base_words,
            "strikes_swept": self.strikes_swept,
            "tiers": dict(self.tiers),
            "claims": {name: report.to_dict()
                       for name, report in self.claims.items()},
            "violated": self.violated,
            "passed": self.passed,
        }


def capture_certificate_bundle(certificate: Certificate, out_dir: str,
                               tamper=None) -> Optional[str]:
    """Export a FAILED certificate as a replayable repro bundle.

    The certifier-side capture hook: a violated guarantee becomes a
    ``certify``-trial bundle whose replay re-certifies the same scheme —
    rebuilt from its registry name, or from the JSON ``tamper`` spec
    (see :func:`repro.certify.tamper.build_tampered_scheme`) for
    deliberately broken schemes — under the recorded mode and seed, and
    must reproduce the identical violated claims and counterexamples.
    Returns the bundle path, or None for a passed certificate.
    """
    if certificate.passed:
        return None
    from repro.bundle import capture_bundle, certificate_outcome
    from repro.errors import ClaimViolation

    payload = certificate.to_dict()
    outcome = certificate_outcome(payload)
    error = ClaimViolation(outcome["message"], context=outcome["context"])
    trial = {
        "kind": "certify", "scheme": certificate.scheme,
        "mode": certificate.mode, "seed": certificate.seed,
        "certificate_schema": CERTIFICATE_SCHEMA_VERSION,
    }
    if tamper is not None:
        trial["tamper"] = tamper
    return capture_bundle(
        error, capture_point="certifier", out_dir=out_dir, trial=trial,
        seed=certificate.seed, outcome=outcome, scheme=payload)


def validate_artifact_dir(out_dir: str, what: str = "out_dir") -> None:
    """Reject artifact-directory arguments before any I/O happens.

    Empty strings and paths that already exist as plain files are
    programming errors a raw ``OSError`` would only surface deep inside
    ``os.makedirs``; fail fast with the typed
    :class:`~repro.errors.InvalidArgument` instead.
    """
    if not isinstance(out_dir, str) or not out_dir:
        raise InvalidArgument(
            f"{what} must be a non-empty path, got {out_dir!r}")
    if os.path.exists(out_dir) and not os.path.isdir(out_dir):
        raise InvalidArgument(
            f"{what} {out_dir!r} exists and is not a directory",
            context={"path": out_dir})


def write_certificate(certificate: Certificate, out_dir: str = ".") -> str:
    """Serialize ``certificate`` as ``CERTIFICATE_<scheme>.json``.

    The write is crash-safe: the JSON is staged to a temp file and
    published with ``os.replace`` (the :func:`atomic_write_text`
    discipline), so a SIGKILL at any point leaves either the previous
    artifact or the new one under the final name — never a torn JSON.
    """
    validate_artifact_dir(out_dir)
    path = os.path.join(out_dir, f"CERTIFICATE_{certificate.scheme}.json")
    text = json.dumps(certificate.to_dict(), indent=2, sort_keys=False) \
        + "\n"
    try:
        os.makedirs(out_dir, exist_ok=True)
        atomic_write_text(path, text)
    except OSError as exc:
        raise CertificationError(
            f"cannot write certificate to {path!r}: {exc}") from exc
    return path


@dataclass
class _Pending:
    """One strike awaiting the batched-equivalence pass."""

    word: RegisterWord
    base: int
    strike: Strike
    result: ReadResult


class Certifier:
    """Sweeps the strike space of a scheme and certifies its claim matrix.

    ``mode`` is ``"fast"`` (exhaustive 1- and 2-bit sweeps plus the
    arithmetic deltas — the CI gate) or ``"full"`` (adds burst and
    stratified random multi-bit tiers).  Sweeps are deterministic for a
    given ``seed``.
    """

    def __init__(self, mode: str = "fast", seed: int = 0,
                 random_base_words: int = 3, random_strike_count: int = 64):
        if mode not in ("fast", "full"):
            raise CertificationError(
                f"mode must be 'fast' or 'full', got {mode!r}")
        if random_base_words < 0 or random_strike_count < 0:
            raise CertificationError(
                "random_base_words and random_strike_count must be >= 0")
        self.mode = mode
        self.seed = seed
        self.random_base_words = random_base_words
        self.random_strike_count = random_strike_count

    # -- sweep construction ------------------------------------------------

    def base_words(self, scheme: SwapScheme) -> List[int]:
        """The golden data words every strike is applied over."""
        width_mask = mask(scheme.data_bits)
        words = []
        for pattern in BASE_PATTERNS:
            value = pattern & width_mask
            if value not in words:
                words.append(value)
        rng = random.Random(self.seed ^ 0x5EED)
        while len(words) < len(BASE_PATTERNS) + self.random_base_words:
            value = rng.getrandbits(scheme.data_bits) & width_mask
            if value not in words:
                words.append(value)
        return words

    def strikes(self, scheme: SwapScheme,
                placements: Optional[set] = None) -> Iterator[Strike]:
        """The swept strike space, exhaustive tier first (weight order).

        ``placements`` restricts enumeration to the named strike
        placements (a partial recertification enumerates only the
        touched claims' placements); ``None`` enumerates everything.
        Mixed-placement enumerators (burst, random) are filtered
        per-strike.
        """
        want = None if placements is None else set(placements)

        def wanted(strike: Strike) -> bool:
            return want is None or strike.placement in want

        if want is None or want.intersection(
                ("pipeline-original", "pipeline-shadow-value",
                 "pipeline-shadow-bus", "pipeline-dp")):
            yield from filter(wanted,
                              exhaustive_pipeline_strikes(scheme,
                                                          max_weight=2))
        if want is None or "storage" in want:
            yield from exhaustive_storage_strikes(scheme, max_weight=2)
        if hasattr(scheme.code, "modulus") \
                and (want is None or "arithmetic" in want):
            rng = random.Random(self.seed ^ 0xA417)
            yield from arithmetic_strikes(scheme, rng)
        if self.mode == "full":
            yield from filter(wanted, burst_strikes(scheme))
            rng = random.Random(self.seed ^ 0xF011)
            yield from filter(wanted,
                              random_strikes(scheme, rng,
                                             self.random_strike_count))

    # -- certification -----------------------------------------------------

    def certify(self, scheme: SwapScheme, name: Optional[str] = None,
                only: Optional[Sequence[str]] = None) -> Certificate:
        """Sweep every strike over every base word and certify each claim.

        ``only`` restricts the sweep to the named claims — the partial
        pass behind incremental recertification.  A partial sweep
        enumerates only the selected claims' placements and applies only
        the strikes at least one selected claim covers, so
        ``strikes_swept``/``tiers`` count exactly the re-swept space
        (the untouched claims are stitched forward by the caller from
        the prior certificate).
        """
        claims = claim_matrix(scheme)
        if only is not None:
            unknown = sorted(set(only) - set(claims))
            if unknown:
                raise CertificationError(
                    f"unknown claim(s) for {scheme.name!r}: {unknown}; "
                    f"matrix: {sorted(claims)}")
            claims = {claim_name: claim
                      for claim_name, claim in claims.items()
                      if claim_name in set(only)}
        reports = {claim_name: ClaimReport(claim_name, claim.description)
                   for claim_name, claim in claims.items()}
        batch_report = reports.get("batched-read-equivalence")
        certificate = Certificate(
            scheme=name or scheme.name, code=scheme.code.name,
            mode=self.mode, seed=self.seed, claims=reports)
        bases = self.base_words(scheme)
        certificate.base_words = len(bases)
        placements = None
        if only is not None:
            placements = set()
            for claim in claims.values():
                placements.update(claim.placements)
        per_strike = [(claim_name, claim)
                      for claim_name, claim in claims.items()
                      if claim_name != "batched-read-equivalence"]
        pending: List[_Pending] = []
        for strike in self.strikes(scheme, placements):
            covering = [(claim_name, claim) for claim_name, claim
                        in per_strike if claim.covers(strike)]
            if only is not None and not covering and batch_report is None:
                continue  # partial sweep: nothing selected constrains it
            certificate.tiers[strike.tier] = \
                certificate.tiers.get(strike.tier, 0) + len(bases)
            for base in bases:
                certificate.strikes_swept += 1
                word = apply_strike(scheme, base, strike)
                result = scheme.read(word)
                for claim_name, claim in covering:
                    report = reports[claim_name]
                    report.swept += 1
                    violation = claim.check(scheme, strike, base, word,
                                            result)
                    if violation is None:
                        continue
                    report.violations += 1
                    report.verdict = "violated"
                    if report.counterexample is None:
                        report.counterexample = self._counterexample(
                            scheme, claim, strike, base, violation)
                if batch_report is None:
                    continue
                pending.append(_Pending(word, base, strike, result))
                if len(pending) >= WARP_LANES:
                    self._check_batch(scheme, pending, batch_report)
                    pending = []
        if pending and batch_report is not None:
            self._check_batch(scheme, pending, batch_report)
        return certificate

    # -- batched equivalence ----------------------------------------------

    def _check_batch(self, scheme: SwapScheme, pending: List[_Pending],
                     report: ClaimReport) -> None:
        """read_many over a warp-sized batch must match the scalar reads."""
        data = np.array([entry.word.data for entry in pending],
                        dtype=np.uint64)
        check = np.array([entry.word.check for entry in pending],
                         dtype=np.uint64)
        dp = np.array([entry.word.dp for entry in pending],
                      dtype=np.uint64) if scheme.uses_data_parity else None
        batch = scheme.read_many(data, check, dp)
        want_status = np.array(
            [READ_STATUS_TO_CODE[entry.result.status] for entry in pending],
            dtype=np.uint8)
        want_data = np.array([entry.result.data for entry in pending],
                             dtype=np.uint64)
        report.swept += len(pending)
        mismatched = (batch.status != want_status) | (batch.data != want_data)
        if not mismatched.any():
            return
        report.verdict = "violated"
        report.violations += int(mismatched.sum())
        if report.counterexample is None:
            index = int(np.argmax(mismatched))
            entry = pending[index]
            report.counterexample = {
                "strike": entry.strike.describe(),
                "base": f"0x{entry.base:x}",
                "stored_data": f"0x{entry.word.data:x}",
                "stored_check": f"0x{entry.word.check:x}",
                "scalar_status": entry.result.status.value,
                "scalar_data": f"0x{entry.result.data:x}",
                "batched_status": int(batch.status[index]),
                "batched_data": f"0x{int(batch.data[index]):x}",
                "violation": "read_many disagrees with the scalar read",
                "weight": entry.strike.weight,
            }

    # -- counterexample minimization ---------------------------------------

    def _counterexample(self, scheme: SwapScheme, claim: Claim,
                        strike: Strike, base: int, violation: str) -> dict:
        """Record a violation, greedily shrunk to a locally minimal strike.

        Strikes are already swept in ascending weight, so the first
        violation is weight-minimal within its tier; the greedy pass
        additionally drops any bit whose removal preserves the violation
        (relevant for burst/random tiers, where wide patterns may hide a
        smaller core).
        """
        minimal, description = self._shrink(scheme, claim, strike, base,
                                            violation)
        word = apply_strike(scheme, base, minimal)
        result = scheme.read(word)
        return {
            "strike": minimal.describe(),
            "base": f"0x{base:x}",
            "stored_data": f"0x{word.data:x}",
            "stored_check": f"0x{word.check:x}",
            "stored_dp": word.dp,
            "status": result.status.value,
            "returned_data": f"0x{result.data:x}",
            "golden_data": f"0x{base:x}",
            "violation": description,
            "weight": minimal.weight,
        }

    def _shrink(self, scheme: SwapScheme, claim: Claim, strike: Strike,
                base: int, violation: str):
        """Greedy bit-removal to a fixpoint; the violation must persist."""
        current, description = strike, violation
        shrinking = True
        while shrinking:
            shrinking = False
            for candidate in shrink_strike(current):
                if not claim.covers(candidate):
                    continue
                word = apply_strike(scheme, base, candidate)
                result = scheme.read(word)
                smaller = claim.check(scheme, candidate, base, word, result)
                if smaller is not None:
                    current, description = candidate, smaller
                    shrinking = True
                    break
        return current, description


def certify_scheme(name: str, mode: str = "fast", seed: int = 0,
                   only: Optional[Sequence[str]] = None) -> Certificate:
    """Certify one registered scheme by name (``only`` = claim subset)."""
    return Certifier(mode=mode, seed=seed).certify(
        make_certified_scheme(name), name=name, only=only)


def certify_all(mode: str = "fast", seed: int = 0,
                names: Optional[Sequence[str]] = None
                ) -> Dict[str, Certificate]:
    """Certify every registered scheme (or the named subset), in order."""
    registry = certification_registry()
    if names is None:
        names = list(registry)
    certificates = {}
    for name in names:
        certificates[name] = certify_scheme(name, mode=mode, seed=seed)
    return certificates
