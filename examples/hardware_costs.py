#!/usr/bin/env python3
"""Hardware cost study (Table IV) plus the Figure 9 unit walk-through.

Synthesizes every SwapCodes hardware block as a gate netlist, prints the
area table, and demonstrates the mixed-width residue MAD predictor and
recode encoder on live values.
"""

import random

from repro.ecc.residue import split_correction_factor
from repro.gates import (build_mad_predictor, build_recode_encoder,
                         format_table_iv)


def demo_table_iv():
    print("Table IV — logic overheads (NAND2 gate equivalents)")
    print(format_table_iv())


def demo_mad_predictor(modulus=127):
    print(f"\nFigure 9a — mod-{modulus} MAD predictor "
          f"(correction factor |2^32| = {split_correction_factor(modulus)})")
    predictor = build_mad_predictor(modulus, pipelined=False)
    rng = random.Random(0)
    a, b = rng.getrandbits(32), rng.getrandbits(32)
    c = rng.getrandbits(64)
    inputs = {
        "ra": [a % modulus], "rb": [b % modulus],
        "rc_hi": [(c >> 32) % modulus],
        "rc_lo": [(c & 0xFFFFFFFF) % modulus],
    }
    values = predictor.evaluate(predictor.pack_inputs(inputs))
    predicted = predictor.read_output(values, "prediction", 0) % modulus
    actual = (a * b + c) % modulus
    print(f"  a*b+c = 0x{a:08X}*0x{b:08X}+0x{c:016X}")
    print(f"  predicted residue {predicted}, actual {actual} "
          f"({'match' if predicted == actual else 'MISMATCH'})")


def demo_recode_encoder(modulus=15):
    print(f"\nFigure 9b — mod-{modulus} recode encoder")
    encoder = build_recode_encoder(modulus, pipelined=False)
    rng = random.Random(1)
    full = rng.getrandbits(64)
    for seg_hi, name in ((0, "low"), (1, "high")):
        segment = (full >> 32) if seg_hi else (full & 0xFFFFFFFF)
        other = (full & 0xFFFFFFFF) if seg_hi else (full >> 32)
        values = encoder.evaluate(encoder.pack_inputs({
            "z": [segment], "pred": [1], "rz": [full % modulus],
            "zadj": [other], "seg_hi": [seg_hi], "cin": [0], "cout": [0],
        }))
        recoded = encoder.read_output(values, "residue", 0) % modulus
        print(f"  {name} segment: recoded residue {recoded}, "
              f"actual {segment % modulus} "
              f"({'match' if recoded == segment % modulus else 'MISMATCH'})")


if __name__ == "__main__":
    demo_table_iv()
    demo_mad_predictor()
    demo_recode_encoder()
