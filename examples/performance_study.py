#!/usr/bin/env python3
"""Performance study (Figures 12, 13, 15, 16) on the GPU simulator.

Compiles every workload with each resilience scheme, runs it with timing,
verifies the outputs, and prints the paper's performance tables.

Usage::

    python examples/performance_study.py [scale]

``scale`` grows the problem sizes (default 0.5; the repo's full setting
is 1.0 and takes a few minutes).
"""

import sys

from repro.experiments import (FIG12_SCHEMES, FIG15_SCHEMES, FIG16_SCHEMES,
                               render_mix_table, render_slowdown_table,
                               run_performance_study)
from repro.workloads import ALL_ORDER


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    print("Figure 12 — SwapCodes slowdowns")
    fig12 = run_performance_study(FIG12_SCHEMES, ALL_ORDER, scale)
    assert fig12.all_verified(), "a workload produced wrong results!"
    print(render_slowdown_table(fig12))

    print("\nFigure 13 — dynamic instruction mix (fractions of baseline)")
    print(render_mix_table(fig12))

    print("\nFigure 15 — inter-thread duplication")
    fig15 = run_performance_study(FIG15_SCHEMES, ALL_ORDER, scale)
    print(render_slowdown_table(fig15))

    print("\nFigure 16 — projected future predictors")
    fig16 = run_performance_study(FIG16_SCHEMES, ALL_ORDER, scale)
    print(render_slowdown_table(fig16))


if __name__ == "__main__":
    main()
