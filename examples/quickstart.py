#!/usr/bin/env python3
"""Quickstart: SwapCodes in five minutes.

Walks the core idea end to end:

1. encode/decode with the register-file SEC-DED code;
2. build a *swapped* codeword (data from the original instruction, check
   bits from its shadow) and watch the decoder catch a pipeline error;
3. compile a small kernel for Swap-ECC and run it on the GPU simulator
   with a fault injected into the datapath.
"""

from repro.ecc import HsiaoSecDed, NaiveSecDedSwap, SecDedDpSwap
from repro.compiler import compile_for_scheme
from repro.gpu import (FaultPlan, LaunchConfig, MemorySpace, ResilienceState,
                       assemble, run_functional)


def demo_register_file_code():
    print("== 1. the register-file SEC-DED code ==")
    code = HsiaoSecDed()
    data = 0xDEAD_BEEF
    check = code.encode(data)
    print(f"data=0x{data:08X}  check=0b{check:07b}")
    flipped = code.decode(data ^ (1 << 9), check)
    print(f"single storage flip  -> {flipped.status.value}, "
          f"restored=0x{flipped.data:08X}")


def demo_swapped_codewords():
    print("\n== 2. swapped codewords detect pipeline errors ==")
    value = 1234567
    faulty = value ^ (1 << 5)  # the original instruction computed this

    naive = NaiveSecDedSwap()
    word = naive.write_shadow(naive.write_original(value), faulty)
    result = naive.read(word)
    print(f"plain SEC-DED miscorrects a shadow error: read "
          f"{result.status.value}, data={result.data} (true={value})")

    scheme = SecDedDpSwap()
    word = scheme.write_shadow(scheme.write_original(faulty), value)
    result = scheme.read(word)
    print(f"SEC-DED-DP flags the pipeline error instead: "
          f"{result.status.value} ({result.error_class.value})")


def demo_swap_ecc_kernel():
    print("\n== 3. a Swap-ECC kernel catching an injected fault ==")
    kernel = assemble("saxpy", """
        S2R R0, SR_TID
        LDG R1, [R0]
        LDG R2, [R0+64]
        IMAD R3, R1, 3, R2
        STG [R0+128], R3
        EXIT
    """)
    launch = LaunchConfig(1, 64)
    compiled = compile_for_scheme(kernel, launch, "swap-ecc")
    print(compiled.kernel.listing())

    memory = MemorySpace(256)
    memory.write_words(0, list(range(64)))
    memory.write_words(64, [7] * 64)
    state = ResilienceState(
        mode="swap", scheme=SecDedDpSwap(),
        fault=FaultPlan(cta_index=0, warp_index=0, occurrence=1, lane=3,
                        bit=12))
    run_functional(compiled.kernel, launch, memory, state)
    for event in state.events:
        print(f"detected: {event.kind} at pc={event.pc} ({event.detail})")
    print("fault detected!" if state.detected else "fault escaped!")


if __name__ == "__main__":
    demo_register_file_code()
    demo_swapped_codewords()
    demo_swap_ecc_kernel()
