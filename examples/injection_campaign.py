#!/usr/bin/env python3
"""Gate-level fault-injection campaign (Figures 10 and 11).

Builds the six pipelined arithmetic units, injects single-event transients
at random gates/flip-flops until each input pair sees an unmasked error
(the Hamartia methodology), then reports the output error patterns and the
SDC risk of SwapCodes under every register-file code.

Usage::

    python examples/injection_campaign.py [samples] [sites]

Defaults (600 samples, 200 sites) finish in about a minute; the paper's
10,000-pair setting is ``python examples/injection_campaign.py 10000 None``.
"""

import sys

from repro.experiments import (render_figure10, render_figure11,
                               run_injection_study)


def main():
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    sites = None
    if len(sys.argv) > 2:
        sites = None if sys.argv[2] == "None" else int(sys.argv[2])
    else:
        sites = 200
    print(f"running campaigns: {samples} input pairs, "
          f"{'all' if sites is None else sites} fault sites per unit")
    study = run_injection_study(sample_count=samples, site_count=sites)

    print("\nFigure 10 — unmasked error severity per unit")
    print(render_figure10(study))
    print("\nFigure 11 — SwapCodes SDC risk per register-file code")
    print(render_figure11(study))
    print("\npaper expectations: single-bit errors dominate; fp64 units "
          "show ~25% >=4-bit patterns;\nMod-3 stays under 5% SDC risk and "
          "Mod-127/TED under ~1%.")


if __name__ == "__main__":
    main()
