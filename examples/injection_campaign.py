#!/usr/bin/env python3
"""Gate-level fault-injection campaign (Figures 10 and 11).

Builds the six pipelined arithmetic units, injects single-event transients
at random gates/flip-flops until each input pair sees an unmasked error
(the Hamartia methodology), then reports the output error patterns and the
SDC risk of SwapCodes under every register-file code.

The sweep runs on the resilient campaign engine: each unit executes in a
crash-isolated worker subprocess, and with ``--journal`` every batch
streams to an append-only, CRC-sealed JSONL checkpoint — kill the run at
any point and re-invoking the same command resumes where it stopped.
``--ci`` switches to batched sweeps with Wilson-interval early stopping.

The campaign supervisor is on by default: Ctrl-C or SIGTERM drains the
run gracefully (the in-flight batch finishes, a ``campaign_paused``
record lands in the journal, and resuming reaches counts identical to an
uninterrupted run), and crash-looping units are quarantined after
``--quarantine`` consecutive failures instead of aborting anything.
``--max-rss``/``--max-cpu``/``--heartbeat`` cap each worker subprocess;
``--salvage`` resumes past a corrupted journal record by truncating at
the first bad line.

``--shards N`` runs the campaign on the distributed fabric instead of a
single engine: the units are split across ``N`` leased shard processes
under ``<journal>.fabric``, each with its own supervised engine and
tamper-evident journal.  A shard that dies or stops heartbeating for
``--lease-ttl`` seconds has its lease re-granted to a fresh holder under
a new fencing token (work stealing; disable with ``--steal no``), a
killed coordinator resumes from its own journal, and the per-shard
journals merge deterministically into ``merged_report.json``.

Usage::

    python examples/injection_campaign.py [samples] [sites]
        [--journal PATH] [--ci HALF_WIDTH] [--batch N] [--timeout S]
        [--max-rss MB] [--max-cpu S] [--heartbeat S] [--quarantine K]
        [--salvage] [--no-supervisor]
        [--shards N] [--lease-ttl S] [--steal yes|no]
        [--bundle-dir DIR]

Defaults (600 samples, 200 sites) finish in about a minute; the paper's
10,000-pair setting is ``python examples/injection_campaign.py 10000 None``.
"""

import argparse

from repro.experiments import (render_figure10, render_figure11,
                               run_injection_study)
from repro.inject import EngineConfig, ResourceBudget, SupervisorConfig


def parse_args():
    parser = argparse.ArgumentParser(
        description="Figure 10/11 gate-level injection campaign")
    parser.add_argument("samples", nargs="?", type=int, default=600,
                        help="input pairs per unit (paper: 10000)")
    parser.add_argument("sites", nargs="?", default="200",
                        help="fault sites per unit, or 'None' for all")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="JSONL checkpoint journal; rerun with the "
                             "same path to resume an interrupted campaign")
    parser.add_argument("--ci", type=float, default=None,
                        metavar="HALF_WIDTH",
                        help="early-stop a unit once its Wilson 95%% CI "
                             "half-width drops below this (e.g. 0.01)")
    parser.add_argument("--batch", type=int, default=None, metavar="N",
                        help="samples per engine batch (default: all "
                             "samples in one batch)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-batch wall-clock timeout in seconds")
    parser.add_argument("--max-rss", type=float, default=None, metavar="MB",
                        help="address-space cap per worker subprocess "
                             "(hogs die with MemoryError, binned as "
                             "resource_exhausted)")
    parser.add_argument("--max-cpu", type=float, default=None, metavar="S",
                        help="CPU-seconds cap per worker subprocess")
    parser.add_argument("--heartbeat", type=float, default=None,
                        metavar="S",
                        help="kill a worker silent for this many seconds "
                             "(catches frozen/SIGSTOPped workers)")
    parser.add_argument("--quarantine", type=int, default=5, metavar="K",
                        help="dead-letter a unit after K consecutive "
                             "failed batch attempts (default 5)")
    parser.add_argument("--salvage", action="store_true",
                        help="truncate a corrupt journal at its first bad "
                             "record instead of refusing to resume")
    parser.add_argument("--no-supervisor", action="store_true",
                        help="run the bare engine: no signal-safe drain, "
                             "no quarantine, no resource budgets")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run on the distributed fabric: split the "
                             "units across N leased shard processes "
                             "(requires --journal for the fabric dir)")
    parser.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="S",
                        help="expire a shard lease whose heartbeat stalls "
                             "this long and re-grant it (default 30)")
    parser.add_argument("--steal", choices=("yes", "no"), default="yes",
                        help="re-grant expired/dead leases to fresh "
                             "holders (default yes); 'no' fails the "
                             "fabric on the first lost lease")
    parser.add_argument("--bundle-dir", default=None, metavar="DIR",
                        help="export a deterministic repro bundle for "
                             "every terminal failure (crash, hang, "
                             "quarantine, lease/merge conflict); replay "
                             "with examples/replay_bundle.py")
    return parser.parse_args()


def main():
    args = parse_args()
    if args.samples < 1:
        raise SystemExit(f"samples must be >= 1, got {args.samples}")
    if args.batch is not None and args.batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {args.batch}")
    sites = None if args.sites == "None" else int(args.sites)
    engine_config = None
    if args.ci is not None or args.batch is not None or \
            args.timeout is not None:
        batch = args.batch if args.batch is not None else \
            max(1, args.samples // 8)
        engine_config = EngineConfig(
            batch_size=batch,
            max_batches=max(1, -(-args.samples // batch)),
            ci_half_width=args.ci, timeout_s=args.timeout)
    if args.no_supervisor:
        supervisor = False
    else:
        budget = None
        if args.max_rss is not None or args.max_cpu is not None or \
                args.heartbeat is not None:
            budget = ResourceBudget(max_rss_mb=args.max_rss,
                                    max_cpu_s=args.max_cpu,
                                    heartbeat_timeout_s=args.heartbeat)
        supervisor = SupervisorConfig(budget=budget,
                                      quarantine_after=args.quarantine)
    if args.shards is not None:
        if args.shards < 1:
            raise SystemExit(f"--shards must be >= 1, got {args.shards}")
        if args.journal is None:
            raise SystemExit("--shards needs --journal (the fabric keeps "
                             "its journals under <journal>.fabric)")
    print(f"running campaigns: {args.samples} input pairs, "
          f"{'all' if sites is None else sites} fault sites per unit"
          + (f", journal={args.journal}" if args.journal else "")
          + (f", shards={args.shards}" if args.shards else ""))
    study = run_injection_study(
        sample_count=args.samples, site_count=sites,
        journal_path=args.journal, engine_config=engine_config,
        supervisor=supervisor, salvage=args.salvage,
        shards=args.shards, lease_ttl_s=args.lease_ttl,
        steal=args.steal == "yes", bundle_dir=args.bundle_dir)

    print("\nFigure 10 — unmasked error severity per unit")
    print(render_figure10(study))
    print("\nFigure 11 — SwapCodes SDC risk per register-file code")
    print(render_figure11(study))
    print("\npaper expectations: single-bit errors dominate; fp64 units "
          "show ~25% >=4-bit patterns;\nMod-3 stays under 5% SDC risk and "
          "Mod-127/TED under ~1%.")


if __name__ == "__main__":
    main()
