#!/usr/bin/env python3
"""Gate-level fault-injection campaign (Figures 10 and 11).

Builds the six pipelined arithmetic units, injects single-event transients
at random gates/flip-flops until each input pair sees an unmasked error
(the Hamartia methodology), then reports the output error patterns and the
SDC risk of SwapCodes under every register-file code.

The sweep runs on the resilient campaign engine: each unit executes in a
crash-isolated worker subprocess, and with ``--journal`` every batch
streams to an append-only JSONL checkpoint — kill the run at any point
and re-invoking the same command resumes where it stopped.  ``--ci``
switches to batched sweeps with Wilson-interval early stopping.

Usage::

    python examples/injection_campaign.py [samples] [sites]
        [--journal PATH] [--ci HALF_WIDTH] [--batch N] [--timeout S]

Defaults (600 samples, 200 sites) finish in about a minute; the paper's
10,000-pair setting is ``python examples/injection_campaign.py 10000 None``.
"""

import argparse

from repro.experiments import (render_figure10, render_figure11,
                               run_injection_study)
from repro.inject import EngineConfig


def parse_args():
    parser = argparse.ArgumentParser(
        description="Figure 10/11 gate-level injection campaign")
    parser.add_argument("samples", nargs="?", type=int, default=600,
                        help="input pairs per unit (paper: 10000)")
    parser.add_argument("sites", nargs="?", default="200",
                        help="fault sites per unit, or 'None' for all")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="JSONL checkpoint journal; rerun with the "
                             "same path to resume an interrupted campaign")
    parser.add_argument("--ci", type=float, default=None,
                        metavar="HALF_WIDTH",
                        help="early-stop a unit once its Wilson 95%% CI "
                             "half-width drops below this (e.g. 0.01)")
    parser.add_argument("--batch", type=int, default=None, metavar="N",
                        help="samples per engine batch (default: all "
                             "samples in one batch)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-batch wall-clock timeout in seconds")
    return parser.parse_args()


def main():
    args = parse_args()
    if args.samples < 1:
        raise SystemExit(f"samples must be >= 1, got {args.samples}")
    if args.batch is not None and args.batch < 1:
        raise SystemExit(f"--batch must be >= 1, got {args.batch}")
    sites = None if args.sites == "None" else int(args.sites)
    engine_config = None
    if args.ci is not None or args.batch is not None or \
            args.timeout is not None:
        batch = args.batch if args.batch is not None else \
            max(1, args.samples // 8)
        engine_config = EngineConfig(
            batch_size=batch,
            max_batches=max(1, -(-args.samples // batch)),
            ci_half_width=args.ci, timeout_s=args.timeout)
    print(f"running campaigns: {args.samples} input pairs, "
          f"{'all' if sites is None else sites} fault sites per unit"
          + (f", journal={args.journal}" if args.journal else ""))
    study = run_injection_study(
        sample_count=args.samples, site_count=sites,
        journal_path=args.journal, engine_config=engine_config)

    print("\nFigure 10 — unmasked error severity per unit")
    print(render_figure10(study))
    print("\nFigure 11 — SwapCodes SDC risk per register-file code")
    print(render_figure11(study))
    print("\npaper expectations: single-bit errors dominate; fp64 units "
          "show ~25% >=4-bit patterns;\nMod-3 stays under 5% SDC risk and "
          "Mod-127/TED under ~1%.")


if __name__ == "__main__":
    main()
