#!/usr/bin/env python3
"""Certify the paper's guarantees for every registered code/scheme pair.

Unlike the sampling campaigns, the certifier machine-checks the claim
matrix itself: every 1- and 2-bit strike across every Figure 5 placement
is swept exhaustively (``--fast``, the CI gate), and ``--full`` adds the
adversarial tiers — contiguous bursts, stratified random multi-bit
patterns — plus the arithmetic deltas probing residue coverage.  One
``CERTIFICATE_<scheme>.json`` artifact lands per scheme, recording each
claim's verdict, swept space, and (on failure) a weight-minimal
counterexample.

With ``--cache-dir`` the sweeps route through the crash-safe
:class:`~repro.certify.store.CertificateStore`: unchanged schemes are
served from verified cache entries (no strike re-enumerated), drifted
schemes recertify incrementally, and the summary reports hit/miss/
stale-served counters.  ``--serve SOCKET`` turns the process into a
long-running certification service on a Unix socket speaking the
campaign frame protocol; ``--strict`` refuses degraded (stale)
certificates instead of serving them marked.

Exit status is the number of schemes whose certificate failed, so the
script doubles as a CI gate::

    python examples/certify_schemes.py --fast
    python examples/certify_schemes.py --full --out artifacts/
    python examples/certify_schemes.py --scheme secded-dp --scheme mod7
    python examples/certify_schemes.py --cache-dir .cert-cache
    python examples/certify_schemes.py --cache-dir .cert-cache \\
        --serve /tmp/certd.sock
"""

import argparse
import sys
import time

from repro.certify import (certification_registry, certify_scheme,
                           write_certificate)


def parse_args():
    parser = argparse.ArgumentParser(
        description="machine-check the SwapCodes guarantee claim matrix")
    parser.add_argument("--scheme", action="append", default=None,
                        metavar="NAME", dest="schemes",
                        help="certify only this scheme (repeatable; "
                             "default: every registered scheme)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--fast", action="store_true",
                      help="exhaustive 1-/2-bit sweep only (default)")
    mode.add_argument("--full", action="store_true",
                      help="add burst and random multi-bit tiers")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the randomized tiers (default 0)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write CERTIFICATE_<scheme>.json files here")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="serve certificates from this crash-safe "
                             "store, sweeping only on miss or drift")
    parser.add_argument("--serve", default=None, metavar="SOCKET",
                        help="run as a certification service on this "
                             "Unix socket path (requires --cache-dir)")
    parser.add_argument("--strict", action="store_true",
                        help="refuse stale certificates instead of "
                             "serving them marked (cache/serve modes)")
    return parser.parse_args()


def certify_direct(names, mode, args, registry):
    """The original store-less path: sweep every scheme, every time."""
    failed = 0
    width = max(len(name) for name in names)
    for name in names:
        started = time.perf_counter()
        certificate = certify_scheme(name, mode=mode, seed=args.seed)
        elapsed = time.perf_counter() - started
        verdict = "PASS" if certificate.passed else "FAIL"
        print(f"  {name:<{width}}  {verdict}  "
              f"{certificate.strikes_swept:>7} strikes  {elapsed:6.2f}s")
        if not certificate.passed:
            failed += 1
            for claim_name in certificate.violated:
                report = certificate.claims[claim_name]
                print(f"    violated: {claim_name} "
                      f"({report.violations} strikes)")
                print(f"    counterexample: {report.counterexample}")
        if args.out:
            path = write_certificate(certificate, args.out)
            print(f"    wrote {path}")
    return failed


def certify_cached(names, mode, args, registry):
    """Serve through the certificate store; sweep only when needed."""
    import json
    import os

    from repro.certify import CertificateService, CertificateStore
    from repro.errors import StaleCertificate

    store = CertificateStore(args.cache_dir)
    service = CertificateService(store, mode=mode, seed=args.seed,
                                 strict=args.strict)
    failed = 0
    width = max(len(name) for name in names)
    for name in names:
        started = time.perf_counter()
        try:
            served = service.lookup(name)
        except StaleCertificate as exc:
            print(f"  {name:<{width}}  REFUSED (strict): {exc}")
            failed += 1
            continue
        elapsed = time.perf_counter() - started
        certificate = served.payload["certificate"]
        verdict = "PASS" if certificate["passed"] else "FAIL"
        print(f"  {name:<{width}}  {verdict}  "
              f"{certificate['strikes_swept']:>7} strikes  "
              f"{elapsed:6.2f}s  [{served.cache}]")
        if not certificate["passed"]:
            failed += 1
            for claim_name in certificate["violated"]:
                report = certificate["claims"][claim_name]
                print(f"    violated: {claim_name} "
                      f"({report['violations']} strikes)")
                print(f"    counterexample: {report['counterexample']}")
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"CACHED_{name}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(served.payload, handle, sort_keys=True,
                          indent=2)
            print(f"    wrote {path}")
    stats = service.stats()
    print(f"\ncache: {stats['hits']} hit(s), {stats['misses']} miss(es), "
          f"{stats['incremental']} incremental, "
          f"{stats['stale_served']} stale-served, "
          f"{stats['refusals']} refusal(s), "
          f"{stats['quarantined']} quarantined")
    return failed


def run_service(mode, args):
    """Block serving certify requests on a Unix socket until shutdown."""
    from repro.certify import CertificateService, CertificateStore
    from repro.inject.transport import UnixSocketListener

    store = CertificateStore(args.cache_dir)
    service = CertificateService(store, mode=mode, seed=args.seed,
                                 strict=args.strict)
    listener = UnixSocketListener(args.serve)
    print(f"certificate service on {args.serve} "
          f"(mode={mode}, seed={args.seed}, strict={args.strict})")
    try:
        service.serve(listener)
    except KeyboardInterrupt:
        pass
    finally:
        listener.close()
    stats = service.stats()
    print(f"served: {stats['hits']} hit(s), {stats['misses']} miss(es), "
          f"{stats['incremental']} incremental, "
          f"{stats['stale_served']} stale-served, "
          f"{stats['refusals']} refusal(s)")
    return 0


def main():
    args = parse_args()
    mode = "full" if args.full else "fast"
    if args.serve and not args.cache_dir:
        print("--serve requires --cache-dir")
        return 2
    if args.serve:
        return run_service(mode, args)
    registry = certification_registry()
    names = args.schemes or list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown scheme(s): {', '.join(unknown)}; "
              f"registered: {', '.join(sorted(registry))}")
        return 2

    failed = 0
    print(f"certifying {len(names)} scheme(s), mode={mode}, "
          f"seed={args.seed}\n")
    if args.cache_dir:
        failed = certify_cached(names, mode, args, registry)
    else:
        failed = certify_direct(names, mode, args, registry)
    print(f"\n{len(names) - failed}/{len(names)} schemes certified")
    return failed


if __name__ == "__main__":
    sys.exit(main())
