#!/usr/bin/env python3
"""Certify the paper's guarantees for every registered code/scheme pair.

Unlike the sampling campaigns, the certifier machine-checks the claim
matrix itself: every 1- and 2-bit strike across every Figure 5 placement
is swept exhaustively (``--fast``, the CI gate), and ``--full`` adds the
adversarial tiers — contiguous bursts, stratified random multi-bit
patterns — plus the arithmetic deltas probing residue coverage.  One
``CERTIFICATE_<scheme>.json`` artifact lands per scheme, recording each
claim's verdict, swept space, and (on failure) a weight-minimal
counterexample.

Exit status is the number of schemes whose certificate failed, so the
script doubles as a CI gate::

    python examples/certify_schemes.py --fast
    python examples/certify_schemes.py --full --out artifacts/
    python examples/certify_schemes.py --scheme secded-dp --scheme mod7
"""

import argparse
import sys
import time

from repro.certify import (certification_registry, certify_scheme,
                           write_certificate)


def parse_args():
    parser = argparse.ArgumentParser(
        description="machine-check the SwapCodes guarantee claim matrix")
    parser.add_argument("--scheme", action="append", default=None,
                        metavar="NAME", dest="schemes",
                        help="certify only this scheme (repeatable; "
                             "default: every registered scheme)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--fast", action="store_true",
                      help="exhaustive 1-/2-bit sweep only (default)")
    mode.add_argument("--full", action="store_true",
                      help="add burst and random multi-bit tiers")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the randomized tiers (default 0)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write CERTIFICATE_<scheme>.json files here")
    return parser.parse_args()


def main():
    args = parse_args()
    mode = "full" if args.full else "fast"
    registry = certification_registry()
    names = args.schemes or list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        print(f"unknown scheme(s): {', '.join(unknown)}; "
              f"registered: {', '.join(sorted(registry))}")
        return 2

    failed = 0
    width = max(len(name) for name in names)
    print(f"certifying {len(names)} scheme(s), mode={mode}, "
          f"seed={args.seed}\n")
    for name in names:
        started = time.perf_counter()
        certificate = certify_scheme(name, mode=mode, seed=args.seed)
        elapsed = time.perf_counter() - started
        verdict = "PASS" if certificate.passed else "FAIL"
        print(f"  {name:<{width}}  {verdict}  "
              f"{certificate.strikes_swept:>7} strikes  {elapsed:6.2f}s")
        if not certificate.passed:
            failed += 1
            for claim_name in certificate.violated:
                report = certificate.claims[claim_name]
                print(f"    violated: {claim_name} "
                      f"({report.violations} strikes)")
                print(f"    counterexample: {report.counterexample}")
        if args.out:
            path = write_certificate(certificate, args.out)
            print(f"    wrote {path}")
    print(f"\n{len(names) - failed}/{len(names)} schemes certified")
    return failed


if __name__ == "__main__":
    sys.exit(main())
