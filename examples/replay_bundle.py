#!/usr/bin/env python3
"""Replay deterministic failure repro bundles and report their verdicts.

A repro bundle (:mod:`repro.bundle`) freezes everything a failure needed
to happen — error record, RNG seed, serialized fault plan, scheme
config, workload id, journal slice, expected outcome fingerprint — as a
content-hashed directory or tarball.  This CLI reconstructs each
bundled trial from the bundle contents alone (no campaign state, no
original journal) and re-runs it, asserting bit-identical reproduction:

* ``REPRODUCED`` — identical error code and outcome fingerprint (and,
  for fault-ladder trials, scalar/tensor executor agreement);
* ``DIVERGED`` — the trial ran but the outcome changed: the bug is
  nondeterministic, or the engine has drifted since capture;
* ``STALE_SCHEMA`` — the bundle was written under a different bundle,
  certificate, or trial schema and cannot be judged.

Usage::

    python examples/replay_bundle.py BUNDLE [BUNDLE ...] [--json] [-q]

``BUNDLE`` is a bundle directory, a ``.tar.gz`` bundle tarball, or a
directory containing several bundles (each ``bundle-*`` child is
replayed).  Exit status is 0 iff every bundle replays ``REPRODUCED``.
"""

import argparse
import glob
import json
import os
import sys

from repro.bundle import ReproBundle, replay
from repro.errors import BundleError


def discover_bundles(paths):
    """Expand each argument into concrete bundle paths.

    A path that is itself a bundle (has ``manifest.json`` or ends in
    ``.tar.gz``) is returned as-is; a plain directory is scanned for
    ``bundle-*`` children so ``--bundle-dir`` output replays wholesale.
    """
    bundles = []
    for path in paths:
        if os.path.isfile(path):
            bundles.append(path)
        elif os.path.isfile(os.path.join(path, "manifest.json")):
            bundles.append(path)
        elif os.path.isdir(path):
            children = sorted(
                glob.glob(os.path.join(path, "bundle-*")))
            if not children:
                raise SystemExit(
                    f"{path}: no manifest.json and no bundle-* children")
            bundles.extend(children)
        else:
            raise SystemExit(f"{path}: no such bundle")
    return bundles


def describe(path):
    """One header line of provenance before the replay verdict."""
    bundle = ReproBundle.load(path)
    code = bundle.code or "<untyped>"
    severity = bundle.severity or "-"
    point = bundle.capture_point or "-"
    kind = (bundle.trial or {}).get("kind", "forensic-only")
    return (f"  code={code} severity={severity} "
            f"captured_at={point} trial={kind}")


def main():
    parser = argparse.ArgumentParser(
        description="replay SwapCodes failure repro bundles")
    parser.add_argument("bundles", nargs="+", metavar="BUNDLE",
                        help="bundle dir, bundle tarball, or a directory "
                             "of bundle-* children")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON object per bundle instead of "
                             "human-readable text")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print only the final tally")
    args = parser.parse_args()

    results = []
    for path in discover_bundles(args.bundles):
        try:
            header = describe(path)
            result = replay(path)
        except BundleError as exc:
            print(f"{path}: ERROR: {exc}", file=sys.stderr)
            results.append(None)
            continue
        results.append(result)
        if args.json:
            print(json.dumps(result.to_dict(), sort_keys=True))
        elif not args.quiet:
            print(f"{path}: {result.verdict}")
            print(header)
            print(f"  {result.detail}")
            if result.cross_check != "ok":
                print(f"  cross_check: {result.cross_check}")

    reproduced = sum(1 for result in results
                     if result is not None and result.reproduced)
    failed = len(results) - reproduced
    if not args.json:
        print(f"\n{reproduced}/{len(results)} bundle(s) REPRODUCED"
              + (f", {failed} failed" if failed else ""))
    return 0 if failed == 0 and results else 1


if __name__ == "__main__":
    sys.exit(main())
