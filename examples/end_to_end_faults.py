#!/usr/bin/env python3
"""End-to-end fault injection: what happens to a real kernel's output?

For one workload, injects random single-bit datapath transients into
running kernels under three protections and classifies each run:

* ``detected`` — a checking trap (SW-Dup) or register-file DUE (Swap-ECC);
* ``crash``    — the corrupted value (usually an address) aborted the run,
  which the hardware reports as a detectable fault;
* ``sdc``      — the kernel finished with a wrong result;
* ``masked``   — the flipped value never influenced the output.

This goes beyond the paper's unit-level study: it shows Swap-ECC's
*error containment* (faults caught at the register read, before reaching
memory) on a full program.

Usage::

    python examples/end_to_end_faults.py [workload] [trials]
"""

import random
import sys

from repro.compiler import compile_for_scheme, resilience_mode
from repro.ecc import SecDedDpSwap
from repro.errors import SimulationError
from repro.gpu import FaultPlan, ResilienceState, run_functional
from repro.workloads import get_workload


def classify(instance, scheme, plan):
    compiled = compile_for_scheme(instance.kernel, instance.launch, scheme)
    launch = compiled.adjust_launch(instance.launch)
    memory = instance.fresh_memory()
    mode = resilience_mode(scheme)
    state = ResilienceState(
        mode=mode, scheme=SecDedDpSwap() if mode == "swap" else None,
        fault=plan)
    try:
        run_functional(compiled.kernel, launch, memory, state)
    except SimulationError:
        return "crash"
    if state.detected:
        return "detected"
    if not state.fault_fired:
        return "not-hit"
    return "masked" if instance.verify(memory) else "sdc"


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "pathfinder"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    instance = get_workload(workload).build(scale=0.25, seed=1)
    rng = random.Random(0)
    schemes = ("baseline", "swdup", "swap-ecc", "pre-mad")
    tallies = {scheme: {"detected": 0, "crash": 0, "sdc": 0, "masked": 0,
                        "not-hit": 0}
               for scheme in schemes}
    for trial in range(trials):
        plan = FaultPlan(
            cta_index=rng.randrange(instance.launch.grid_ctas),
            warp_index=rng.randrange(instance.launch.warps_per_cta),
            occurrence=rng.randrange(60),
            lane=rng.randrange(min(32, instance.launch.threads_per_cta)),
            bit=rng.randrange(32))
        for scheme in schemes:
            tallies[scheme][classify(instance, scheme, plan)] += 1

    print(f"single-bit transients into {workload} "
          f"({trials} trials per scheme)")
    print(f"{'scheme':12s} {'detected':>9s} {'crash':>6s} {'sdc':>6s} "
          f"{'masked':>7s} {'not-hit':>8s}")
    for scheme, tally in tallies.items():
        print(f"{scheme:12s} {tally['detected']:9d} {tally['crash']:6d} "
              f"{tally['sdc']:6d} {tally['masked']:7d} "
              f"{tally['not-hit']:8d}")
    print("\nexpectation: the unprotected baseline shows SDCs; SW-Dup and "
          "the SwapCodes variants detect (or mask) everything.")


if __name__ == "__main__":
    main()
