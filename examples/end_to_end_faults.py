#!/usr/bin/env python3
"""End-to-end fault injection: what happens to a real kernel's output?

For one workload, injects random single-bit datapath transients into
running kernels under four protections and classifies each run with the
engine's outcome taxonomy:

* ``due``/``trap`` — a register-file DUE (Swap-ECC) or checking trap
  (SW-Dup) caught the error;
* ``crash``   — the corrupted value (usually an address) aborted the run,
  which the hardware reports as a detectable fault;
* ``sdc``     — the kernel finished with a wrong result;
* ``masked``  — the flipped value never influenced the output;
* ``not-hit`` — the planned fault never fired (too few dynamic ops).

Each protection scheme sweeps as one work unit of the resilient campaign
engine: trials run in a crash-isolated worker, results stream to an
optional ``--journal`` checkpoint (rerun the same command to resume), and
the detection rate is reported with its Wilson 95% confidence interval.

Usage::

    python examples/end_to_end_faults.py [workload] [trials]
        [--journal PATH] [--recover]
"""

import argparse

from repro.inject import CampaignEngine, EngineConfig, gpu_work_unit

SCHEMES = ("baseline", "swdup", "swap-ecc", "pre-mad")


def main():
    parser = argparse.ArgumentParser(
        description="end-to-end FaultPlan sweep per protection scheme")
    parser.add_argument("workload", nargs="?", default="pathfinder")
    parser.add_argument("trials", nargs="?", type=int, default=40)
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="JSONL checkpoint journal for resume")
    parser.add_argument("--recover", action="store_true",
                        help="re-execute detected faults from the "
                             "checkpoint image to confirm containment")
    args = parser.parse_args()

    units = [
        gpu_work_unit(args.workload, scheme, scale=0.25, build_seed=1,
                      seed=index, recovery_attempts=3 if args.recover else 0)
        for index, scheme in enumerate(SCHEMES)
    ]
    config = EngineConfig(batch_size=args.trials, max_batches=1,
                          ci_half_width=None, timeout_s=600.0)
    report = CampaignEngine(config).run(units, args.journal)

    print(f"single-bit transients into {args.workload} "
          f"({args.trials} trials per scheme)")
    header = (f"{'scheme':12s} {'due':>5s} {'trap':>5s} {'crash':>6s} "
              f"{'sdc':>5s} {'masked':>7s} {'not-hit':>8s} "
              f"{'hang':>5s} {'detection rate (95% CI)':>28s}")
    print(header)
    for unit in units:
        result = report.units[unit.unit_id]
        counts = result.counts
        scheme = unit.params["compile_scheme"]
        label = str(result.estimate) if result.trials else "n/a"
        if result.failed:
            label = f"worker {result.status}: {result.detail[:40]}"
        print(f"{scheme:12s} {counts['due']:5d} {counts['trap']:5d} "
              f"{counts['crash']:6d} {counts['sdc']:5d} "
              f"{counts['masked']:7d} {counts['not_hit']:8d} "
              f"{counts['hang']:5d} {label:>28s}")
    if args.recover:
        recovered = sum(report.units[u.unit_id].counts["recovered"]
                        for u in units)
        print(f"\nrecovered-from-checkpoint confirmations: {recovered}")
    print("\nexpectation: the unprotected baseline shows SDCs; SW-Dup and "
          "the SwapCodes variants detect (or mask) everything.")


if __name__ == "__main__":
    main()
