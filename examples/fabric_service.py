#!/usr/bin/env python3
"""Network-attached campaign fabric: coordinator and worker CLI.

The service deployment of the distributed injection fabric.  One
process *listens* on a Unix socket and coordinates the Figure 10
gate-level campaign as leased shards; any number of worker processes
*attach* to that socket, lease shards, stream progress, and complete
them.  All durable state (coordinator journal, per-lease shard
journals, ``merged_report.json``) is identical to the forking fabric of
``examples/injection_campaign.py --shards N`` — byte-identical merged
reports, and either deployment can resume the other's fabric dir.

Coordinator::

    python examples/fabric_service.py --listen /tmp/fab.sock \
        --fabric-dir /tmp/fab --shards 3 [samples] [sites]

Workers (as many as you like, from other terminals)::

    python examples/fabric_service.py --attach /tmp/fab.sock \
        --worker-id w0

Chaos-hardening demo: make a worker's transport hostile and watch the
run converge anyway (dropped frames are resent, duplicated completions
are acknowledged-and-dropped, a torn connection reattaches and
re-validates its fencing token)::

    python examples/fabric_service.py --attach /tmp/fab.sock \
        --chaos-seed 42 --drop 0.1 --dup 0.1 --delay 0.1 --delay-max 0.05

Kill a worker mid-shard (``kill -9``) and start a new one: the lease
TTL expires, the shard is re-granted under a fresh fencing token, and
the new holder's journal is rebased from every durable batch the dead
worker wrote — no redone work, no double counts.
"""

import argparse
import sys
import threading

from repro.inject.coordinator import CoordinatorService
from repro.inject.engine import EngineConfig, gate_work_unit
from repro.inject.fabric import FabricConfig
from repro.inject.transport import (ChaosConfig, ChaosDialer,
                                    UnixSocketListener, unix_connect)
from repro.inject.worker import ShardWorker, WorkerConfig

UNIT_ORDER = ("fxp-add-32", "fxp-mad-32", "fp-add-32", "fp-mad-32",
              "fp-add-64", "fp-mad-64")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="network-attached campaign fabric (coordinator/worker)")
    role = parser.add_mutually_exclusive_group(required=True)
    role.add_argument("--listen", metavar="SOCK",
                      help="coordinate: listen on this Unix socket path")
    role.add_argument("--attach", metavar="SOCK",
                      help="work: attach to a coordinator at this socket")
    parser.add_argument("samples", nargs="?", type=int, default=600,
                        help="input pairs per unit (coordinator)")
    parser.add_argument("sites", nargs="?", default="200",
                        help="fault sites per unit, or 'None' for all")
    parser.add_argument("--fabric-dir", default=None, metavar="DIR",
                        help="durable fabric state dir (coordinator)")
    parser.add_argument("--shards", type=int, default=3,
                        help="leased shards to split the campaign into")
    parser.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="S", help="lease TTL in seconds")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign base seed (coordinator)")
    parser.add_argument("--bundle-dir", default=None, metavar="DIR",
                        help="export terminal failures as repro bundles")
    parser.add_argument("--worker-id", default="worker-0",
                        help="this worker's stable identity")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        metavar="N", help="enable a deterministic chaos "
                        "schedule on this worker's transport")
    parser.add_argument("--drop", type=float, default=0.0,
                        help="chaos: per-frame drop probability")
    parser.add_argument("--dup", type=float, default=0.0,
                        help="chaos: per-frame duplication probability")
    parser.add_argument("--delay", type=float, default=0.0,
                        help="chaos: per-frame delay probability")
    parser.add_argument("--delay-max", type=float, default=0.05,
                        metavar="S", help="chaos: max injected delay")
    return parser.parse_args(argv)


def run_coordinator(args) -> int:
    if args.fabric_dir is None:
        print("--listen requires --fabric-dir", file=sys.stderr)
        return 2
    sites = None if str(args.sites) == "None" else int(args.sites)
    units = [gate_work_unit(name, site_count=sites,
                            seed=args.seed + index)
             for index, name in enumerate(UNIT_ORDER)]
    config = FabricConfig(
        shards=args.shards, lease_ttl_s=args.lease_ttl,
        install_signal_handlers=False, bundle_dir=args.bundle_dir,
        engine=EngineConfig(batch_size=args.samples, max_batches=1,
                            ci_half_width=None, timeout_s=None))
    listener = UnixSocketListener(args.listen)
    service = CoordinatorService(args.fabric_dir, config=config,
                                 listener=listener)
    job = service.submit(units)

    def narrate():
        for event in job.events():
            kind = event.pop("event")
            detail = " ".join(f"{key}={value}"
                              for key, value in sorted(event.items()))
            print(f"[{kind}] {detail}", flush=True)

    printer = threading.Thread(target=narrate, daemon=True)
    printer.start()
    try:
        report = service.serve()
    finally:
        listener.close()
    printer.join(timeout=5.0)
    print(f"SERVICE_DONE paused={report.paused} "
          f"stopped_globally={report.stopped_globally} "
          f"merged={report.merged_report_path}")
    return 0


def run_worker(args) -> int:
    dial = lambda: unix_connect(args.attach, timeout=5.0)  # noqa: E731
    if args.chaos_seed is not None:
        chaos = ChaosConfig(seed=args.chaos_seed, drop=args.drop,
                            dup=args.dup, delay=args.delay,
                            delay_max_s=args.delay_max)
        dial = ChaosDialer(dial, chaos)
        print(f"chaos transport armed: {chaos}")
    worker = ShardWorker(dial, worker_id=args.worker_id,
                         config=WorkerConfig(
                             seed=args.chaos_seed or 0))
    report = worker.run()
    for entry in report.shards:
        print(f"[shard] {entry['shard']} token={entry['token']} "
              f"outcome={entry['outcome']}")
    print(f"WORKER_DONE worker={report.worker_id} "
          f"shards={len(report.shards)} "
          f"reconnects={report.reconnect_attempts} "
          f"reason={report.reason!r}")
    return 0 if not report.paused else 3


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.listen:
        return run_coordinator(args)
    return run_worker(args)


if __name__ == "__main__":
    raise SystemExit(main())
