"""Package metadata for the SwapCodes reproduction.

Metadata lives here (rather than pyproject.toml) because the offline build
environment lacks the ``wheel`` package that PEP 660 editable installs
require; with a plain setup.py, ``pip install -e .`` uses the legacy
``setup.py develop`` path and works without network access.
"""

import os

from setuptools import find_packages, setup


def read_readme():
    if not os.path.exists("README.md"):
        return ""
    with open("README.md", encoding="utf-8") as handle:
        return handle.read()


setup(
    name="repro",
    version="1.0.0",
    description=(
        "SwapCodes (MICRO 2018) reproduction: ECC-repurposed GPU pipeline "
        "error detection"),
    long_description=read_readme(),
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
