"""Figure 15: inter-thread duplication versus the intra-thread baseline."""

from repro.experiments import FIG15_SCHEMES, render_slowdown_table, \
    run_performance_study
from repro.workloads import ALL_ORDER, RODINIA_ORDER


def test_fig15_interthread(once):
    study = once(run_performance_study, FIG15_SCHEMES, ALL_ORDER, 0.5, 0)
    print()
    print(render_slowdown_table(study,
                                "Figure 15: inter-thread duplication"))
    assert study.all_verified()
    # Inter-thread rejects SNAP (shuffles) and matrixMul (CTA size).
    assert study.grid["snap"]["interthread"].rejected
    assert study.grid["matmul"]["interthread"].rejected
    for name in RODINIA_ORDER:
        assert not study.grid[name]["interthread"].rejected
    # Paper: inter-thread is worse than intra-thread duplication on both
    # mean and max, and stays worse even with checking removed.
    swdup = study.mean_slowdown("swdup")
    inter = study.mean_slowdown("interthread")
    nocheck = study.mean_slowdown("interthread-nocheck")
    assert inter > swdup
    assert nocheck > swdup * 0.7
    assert study.worst_slowdown("interthread")[0] > \
        study.worst_slowdown("swdup")[0]
