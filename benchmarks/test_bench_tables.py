"""Tables I-IV: qualitative data and the synthesized area model."""

from repro.experiments import (TABLE_I, TABLE_II, format_table_iv,
                               table_iii, table_iv_rows)


def test_table_i_and_ii_render(once):
    def build():
        assert len(TABLE_I) == 5
        assert TABLE_I["swapcodes"]["major_issue"] == "None"
        assert len(TABLE_II) == 5
        return TABLE_I

    once(build)


def test_table_iii(once):
    rows = once(table_iii, 15)
    by_case = {(row["cout"], row["cin"]): row for row in rows}
    assert by_case[(0, 0)]["signal"] == "0000"
    assert by_case[(0, 1)]["signal"] == "0001"
    assert by_case[(1, 0)]["signal"] == "1110"
    assert by_case[(1, 1)]["signal"] == "1111"


def test_table_iv_area(once):
    rows = once(table_iv_rows)
    print()
    print(format_table_iv(rows))
    by_key = {(row.section, row.unit, row.bits): row for row in rows}
    # MAD residue prediction is nearly free (paper: <1% for Mod-3).
    assert by_key[("swap-predict", "MAD", "2")].overhead < 0.01
    assert by_key[("swap-predict", "MAD", "7")].overhead < 0.10
    # Modified encoders carry the largest *relative* overhead.
    assert by_key[("swap-predict", "Mod-3 Enc.", "2")].overhead > 1.0
    # Swap-ECC additions stay small next to the decoder (paper: ~50%).
    move = by_key[("swap-ecc", "Move-Propagate", "7")]
    dp = by_key[("swap-ecc", "SEC-(DED)-DP", "2")]
    assert move.overhead + dp.overhead < 0.6
