"""Simulator throughput: trial-batched tensor executor vs. scalar loop.

Drives ``benchmarks/run_bench.py --sim`` (the ``BENCH_sim.json``
harness) at smoke scale and asserts the performance contract from
EXPERIMENTS.md: every benched workload's batched campaign path must
beat its scalar loop by at least 5x, and the campaign headline row must
clear a conservative smoke-scale trials/s floor.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import run_bench  # noqa: E402

#: smoke-scale floors, deliberately far below the committed
#: BENCH_sim.json numbers so slow shared CI runners still pass while a
#: real regression (a scalar fallback sneaking into the batched path,
#: an O(trials) scan reappearing) still trips them
SMOKE_SPEEDUP_FLOOR = 5.0
SMOKE_CAMPAIGN_FLOOR = 5_000.0


def test_sim_throughput(once, tmp_path):
    output = tmp_path / "BENCH_sim.json"
    report = once(run_bench.run_sim, smoke=True, output=str(output))
    print()
    print(run_bench.summarize(report))

    assert report["schema"] == run_bench.SIM_SCHEMA
    written = json.loads(output.read_text())
    assert written["schema"] == run_bench.SIM_SCHEMA

    for name in run_bench.SIM_WORKLOADS:
        row = report["workloads"][name]
        assert row["speedup"] >= SMOKE_SPEEDUP_FLOOR, (name, row)
        assert row["fallbacks"] == 0, (name, row)

    campaign = report["campaign"]
    # "trials" counts architecturally visible faults only (not_hit is
    # excluded), so it is at most the number of simulated samples.
    assert 0 < campaign["trials"] <= campaign["samples"]
    assert campaign["trials_per_s"] >= SMOKE_CAMPAIGN_FLOOR, campaign
