"""Shared benchmark configuration.

Every benchmark regenerates one paper table or figure at a reduced scale
(the full-scale harness lives in ``repro.experiments`` and the examples).
Each runs once per session (``pedantic`` with one round): these are
experiment drivers, not microbenchmarks.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
