"""Ablations of the design choices DESIGN.md calls out.

* Naive SEC-DED under swapping (the paper's motivating strawman) versus
  the SEC-DED-DP reporting of Figure 5: miscorrection rate on shadow
  errors.
* Default Hsiao columns versus the searched low-alias set: 3-bit
  compute-error escape rate.
* The footnote-3 "accept" policy versus "strict": detection coverage paid
  for with storage-DUE false positives.
"""

import random

from repro.ecc import HsiaoSecDed, NaiveSecDedSwap, SecDedDpSwap


def _shadow_error_outcomes(scheme, trials=400, seed=0):
    rng = random.Random(seed)
    miscorrected = detected = benign = 0
    for __ in range(trials):
        value = rng.getrandbits(32)
        shadow = value ^ (1 << rng.randrange(32))
        result = scheme.read(scheme.write_pair(value, shadow))
        if result.is_due:
            detected += 1
        elif result.data == value:
            benign += 1
        else:
            miscorrected += 1
    return miscorrected, detected, benign


def test_ablation_naive_vs_dp_reporting(once):
    def run():
        return (_shadow_error_outcomes(NaiveSecDedSwap()),
                _shadow_error_outcomes(SecDedDpSwap()))

    (naive_mis, __, __), (dp_mis, dp_det, dp_benign) = once(run)
    print(f"\nnaive SEC-DED: {naive_mis}/400 shadow errors miscorrected")
    print(f"SEC-DED-DP:    {dp_mis}/400 miscorrected, {dp_det} DUE, "
          f"{dp_benign} benign")
    assert naive_mis > 300      # the strawman really is broken
    assert dp_mis == 0          # Figure 5 reporting never miscorrects


def test_ablation_low_alias_columns(once):
    def run():
        return (HsiaoSecDed().check_alias_error_count(),
                HsiaoSecDed.low_alias().check_alias_error_count())

    default_count, low_count = once(run)
    print(f"\n3-bit compute patterns aliasing to a check column: "
          f"default {default_count}, low-alias {low_count} (of 4960)")
    assert low_count < default_count * 0.7


def test_ablation_strict_check_policy(once):
    def run():
        rng = random.Random(1)
        accept = SecDedDpSwap()
        strict = SecDedDpSwap(check_correction="strict")
        accept_escapes = strict_escapes = strict_storage_dues = 0
        for __ in range(400):
            value = rng.getrandbits(32)
            bad = value
            for bit in rng.sample(range(32), 3):
                bad ^= 1 << bit
            word_a = accept.write_shadow(accept.write_original(bad), value)
            if not accept.read(word_a).is_due:
                accept_escapes += 1
            word_s = strict.write_shadow(strict.write_original(bad), value)
            if not strict.read(word_s).is_due:
                strict_escapes += 1
            storage = strict.write_pair(value).with_check_error(
                1 << rng.randrange(7))
            if strict.read(storage).is_due:
                strict_storage_dues += 1
        return accept_escapes, strict_escapes, strict_storage_dues

    accept_escapes, strict_escapes, storage_dues = once(run)
    print(f"\n3-bit compute escapes: accept={accept_escapes}/400, "
          f"strict={strict_escapes}/400 "
          f"(strict pays {storage_dues} storage DUEs)")
    assert strict_escapes == 0          # full triple-bit detection
    assert accept_escapes < 400 * 0.25  # the hole is small
    assert storage_dues == 400          # the availability price
