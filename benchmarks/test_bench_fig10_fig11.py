"""Figures 10 and 11: injection campaigns over the six arithmetic units.

Shape assertions mirror the paper: single-bit errors dominate everywhere,
fp64 units produce the most >=4-bit patterns, and SwapCodes SDC risk is
small for every code — under 5% even for Mod-3, with Mod-127 and TED
strongest.
"""

from repro.experiments import run_injection_study, render_figure10, \
    render_figure11


def test_fig10_error_patterns(once):
    study = once(run_injection_study, sample_count=400, site_count=150,
                 seed=0, units=("fxp-add-32", "fxp-mad-32", "fp-add-32",
                                "fp-add-64"))
    print()
    print(render_figure10(study))
    for unit, dist in study.severity.items():
        assert dist["1"].mean > 0.5, unit  # single-bit dominates
    # fp64 shows more wide patterns than the fixed-point adder
    assert study.severity["fp-add-64"][">=4"].mean > \
        study.severity["fxp-add-32"][">=4"].mean


def test_fig11_sdc_risk(once):
    study = once(run_injection_study, sample_count=400, site_count=150,
                 seed=1, units=("fxp-add-32", "fp-add-32", "fp-add-64"))
    print()
    print(render_figure11(study))
    assert study.mean_sdc_risk("mod3") < 0.05      # paper: <5%
    assert study.mean_sdc_risk("mod127") < 0.01    # strongest residue
    assert study.mean_sdc_risk("ted") < 0.02
    assert study.mean_sdc_risk("secded-dp") < 0.05
    # parity is the weak strawman
    assert study.mean_sdc_risk("parity") > study.mean_sdc_risk("mod3")
