"""Figures 12 and 13: SwapCodes performance and dynamic instruction mix."""

from repro.experiments import (FIG12_SCHEMES, render_mix_table,
                               render_slowdown_table, run_performance_study)
from repro.workloads import ALL_ORDER

WORKLOADS = ALL_ORDER


def _study(scale):
    return run_performance_study(schemes=FIG12_SCHEMES, workloads=WORKLOADS,
                                 scale=scale, seed=0)


def test_fig12_performance(once):
    study = once(_study, 0.5)
    print()
    print(render_slowdown_table(study, "Figure 12: slowdown vs baseline"))
    assert study.all_verified()
    swdup = study.mean_slowdown("swdup")
    swap_ecc = study.mean_slowdown("swap-ecc")
    addsub = study.mean_slowdown("pre-addsub")
    mad = study.mean_slowdown("pre-mad")
    # Paper ordering: SW-Dup (49%) > Swap-ECC (21%) > Pre-AddSub (16%)
    # >= Pre-MAD (15%).
    assert swdup > swap_ecc > addsub >= mad - 0.01
    assert 0.15 < swdup < 0.80
    assert 0.08 < swap_ecc < 0.35
    # lavaMD is the worst case for every SwapCodes variant (fp64-bound).
    __, worst_workload = study.worst_slowdown("swap-ecc")
    assert worst_workload == "lavamd"


def test_fig13_instruction_mix(once):
    study = once(_study, 0.35)
    print()
    print(render_mix_table(study))
    # Paper: bloat ordering SW-Dup (~91%) > Swap-ECC (~63%) >
    # Pre-AddSub (~45%) > Pre-MAD (~33%); checking is 11-35% of baseline.
    assert study.mean_bloat("swdup") > study.mean_bloat("swap-ecc")
    assert study.mean_bloat("swap-ecc") > study.mean_bloat("pre-addsub")
    assert study.mean_bloat("pre-addsub") > study.mean_bloat("pre-mad")
    checking = study.mean_checking_fraction("swdup")
    assert 0.10 < checking < 0.60
    # Swap-ECC eliminates checking entirely.
    assert study.mean_checking_fraction("swap-ecc") == 0.0
