#!/usr/bin/env python
"""Benchmark driver — emits ``BENCH_codec.json`` / ``BENCH_sim.json``.

The default (codec) mode measures the scalar Python ECC codec against
the vectorized batch layer (:mod:`repro.ecc.vectorized`) on three axes:

* per-code encode/decode ops/s over a large word batch;
* warp-wide register reads (32 lanes per call) through
  ``SwapScheme.read_many`` versus 32 scalar ``read`` calls — the GPU
  simulator's hot path;
* end-to-end gate-campaign trials/s through the injection engine's
  batched classification.

``--sim`` switches to the simulator benchmark, which measures the
trial-batched tensor executor (:mod:`repro.gpu.tensor`) against the
scalar per-trial loop through the injection engine's GPU fault sweeps:

* per-workload scalar vs. batched campaign trials/s and the speedup;
* a campaign headline row — engine-level trials/s on the ``saxpy``
  micro-workload, the number the BENCH_sim performance contract in
  EXPERIMENTS.md pins a floor under.

Run either from the repo root::

    PYTHONPATH=src python benchmarks/run_bench.py [--smoke] \
        [--output BENCH_codec.json]
    PYTHONPATH=src python benchmarks/run_bench.py --sim [--smoke] \
        [--output BENCH_sim.json]

``--smoke`` shrinks every workload for CI; the JSON schemas are
documented in EXPERIMENTS.md ("Codec benchmark harness" and "Simulator
benchmark harness").  Compare two runs of the same schema with::

    python benchmarks/run_bench.py --compare old.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from typing import Callable, Dict, Sequence

SCHEMA = "swapcodes-bench-codec/1"
SIM_SCHEMA = "swapcodes-bench-sim/1"

#: workloads timed by the simulator benchmark: the two bench
#: micro-kernels plus three paper programs spanning the instruction mix
#: (fp64 elimination, divergent int traversal, shuffle-heavy fp32)
SIM_WORKLOADS = ("saxpy", "fxp-stream", "gaussian", "bfs", "snap")


def _best_seconds(func: Callable[[], None], repeats: int) -> float:
    """Wall-clock seconds of the fastest of ``repeats`` runs of ``func``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_codes(words: int, repeats: int, rng) -> Dict[str, Dict[str, float]]:
    """Scalar vs. vectorized encode/decode ops/s for each swept code."""
    import numpy as np
    from repro.ecc import HammingSec, HsiaoSecDed, ParityCode, ResidueCode, \
        TedCode

    codes = {
        "secded-39-32": HsiaoSecDed(),
        "sec-38-32": HammingSec(),
        "ted-39-32": TedCode(),
        "mod7": ResidueCode(7),
        "parity-32": ParityCode(),
    }
    data = rng.integers(0, 2**32, size=words, dtype=np.uint64)
    results: Dict[str, Dict[str, float]] = {}
    for name, code in codes.items():
        check = code.encode_many(data)
        # Corrupt a third of the words with single-bit data errors so the
        # decoder exercises every verdict, not just the clean fast path.
        bad = data.copy()
        struck = rng.integers(0, 3, size=words) == 0
        bad[struck] ^= np.uint64(1) << rng.integers(
            0, code.data_bits, size=int(struck.sum()), dtype=np.uint64)

        bad_list = [int(value) for value in bad]
        check_list = [int(value) for value in check]
        scalar_decode = _best_seconds(
            lambda: [code.decode(d, c)
                     for d, c in zip(bad_list, check_list)], repeats)
        vector_decode = _best_seconds(
            lambda: code.decode_many(bad, check), repeats)
        scalar_encode = _best_seconds(
            lambda: [code.encode(d) for d in bad_list], repeats)
        vector_encode = _best_seconds(
            lambda: code.encode_many(bad), repeats)
        results[name] = {
            "scalar_decode_ops_per_s": words / scalar_decode,
            "vector_decode_ops_per_s": words / vector_decode,
            "decode_speedup": scalar_decode / vector_decode,
            "scalar_encode_ops_per_s": words / scalar_encode,
            "vector_encode_ops_per_s": words / vector_encode,
            "encode_speedup": scalar_encode / vector_encode,
        }
    return results


def bench_warp_read(batches: int, repeats: int, rng) -> Dict[str, float]:
    """Warp-wide register-read decode: scalar loop vs. ``read_many``.

    Mirrors the simulator's read-port granularity: ``WarpState`` gathers
    every tainted lane of every source register of an instruction —
    up to 3 registers x 32 lanes — into ONE ``read_many`` call (see
    ``repro.gpu.warp._check_tainted_read``).  The scalar baseline is the
    pre-batching behaviour: one ``scheme.read`` per lane.  A
    single-register (32-lane) breakdown is reported alongside.
    """
    import numpy as np
    from repro.ecc import SecDedDpSwap

    scheme = SecDedDpSwap()
    lanes = 32
    registers = 3  # a 3-operand instruction (e.g. fused multiply-add)
    span = lanes * registers
    values = rng.integers(0, 2**32, size=batches * span, dtype=np.uint64)
    words = [scheme.write_pair(int(value)) for value in values]
    # Strike one lane per warp-read so each batch carries a real error.
    for index in range(0, len(words), span):
        words[index] = words[index].with_data_error(
            1 << int(rng.integers(0, 32)))
    data = np.array([word.data for word in words], dtype=np.uint64)
    check = np.array([word.check for word in words], dtype=np.uint64)
    dp = np.array([word.dp for word in words], dtype=np.uint64)

    def scalar_pass():
        for word in words:
            scheme.read(word)

    def warp_pass(width):
        def run():
            for start in range(0, len(words), width):
                end = start + width
                scheme.read_many(data[start:end], check[start:end],
                                 dp[start:end])
        return run

    scalar = _best_seconds(scalar_pass, repeats)
    vector = _best_seconds(warp_pass(span), repeats)
    single = _best_seconds(warp_pass(lanes), repeats)
    reads = batches * span
    return {
        "scheme": scheme.name,
        "lanes": lanes,
        "registers_per_read": registers,
        "words_per_call": span,
        "batches": batches,
        "scalar_reads_per_s": reads / scalar,
        "vector_reads_per_s": reads / vector,
        "speedup": scalar / vector,
        "single_register": {
            "words_per_call": lanes,
            "vector_reads_per_s": reads / single,
            "speedup": scalar / single,
        },
    }


def bench_campaign(samples: int, sites: int) -> Dict[str, float]:
    """Gate-campaign trials/s through the engine's batched classification."""
    from repro.inject.engine import BatchSpec, run_gate_batch

    params = {"unit": "fxp-add-32", "site_count": sites,
              "scheme": "secded-dp"}
    batch = BatchSpec(index=0, size=samples, seed=3)
    start = time.perf_counter()
    payload = run_gate_batch(params, None, batch)
    seconds = time.perf_counter() - start
    return {
        "unit": params["unit"],
        "scheme": params["scheme"],
        "samples": samples,
        "sites": sites,
        "trials": payload["trials"],
        "seconds": seconds,
        "trials_per_s": payload["trials"] / seconds if seconds else 0.0,
    }


def bench_sim_workloads(names: Sequence[str], trials: int,
                        scalar_trials: int, trial_batch: int,
                        seed: int) -> Dict[str, Dict[str, float]]:
    """Scalar vs. trial-batched campaign trials/s per workload.

    Both paths run the same engine entry point
    (:func:`repro.inject.engine.run_gpu_batch`) under ``swap-ecc`` so
    the comparison includes plan drawing, state setup, and outcome
    classification — not just raw stepping.  The scalar loop times a
    smaller batch (``scalar_trials``) because it is orders of magnitude
    slower; rates are per-second so the rows stay comparable.
    """
    from repro.inject.engine import BatchSpec, run_gpu_batch

    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        params = {"workload": name, "compile_scheme": "swap-ecc",
                  "scale": 0.25, "trial_batch": trial_batch}
        # Warm-up: kernel compile and workload build happen once per
        # process; keep them out of both timed regions.
        run_gpu_batch(dict(params, tensor=False), None,
                      BatchSpec(index=0, size=1, seed=seed))
        start = time.perf_counter()
        run_gpu_batch(dict(params, tensor=False), None,
                      BatchSpec(index=0, size=scalar_trials, seed=seed))
        scalar_seconds = time.perf_counter() - start
        start = time.perf_counter()
        report = run_gpu_batch(params, None,
                               BatchSpec(index=0, size=trials, seed=seed))
        batched_seconds = time.perf_counter() - start
        scalar_rate = scalar_trials / scalar_seconds
        batched_rate = trials / batched_seconds
        rows[name] = {
            "compile_scheme": "swap-ecc",
            "scale": 0.25,
            "trials": trials,
            "scalar_trials": scalar_trials,
            "trial_batch": trial_batch,
            "scalar_trials_per_s": scalar_rate,
            "batched_trials_per_s": batched_rate,
            "speedup": batched_rate / scalar_rate,
            "fallbacks": report["payload"]["fallbacks"],
        }
    return rows


def bench_sim_campaign(samples: int, trial_batch: int,
                       seed: int) -> Dict[str, float]:
    """The BENCH_sim headline: engine GPU-campaign trials/s on saxpy.

    The simulator analogue of :func:`bench_campaign`'s gate row — a
    small kernel where per-trial overhead, not kernel length, sets the
    rate.  A short warm-up batch runs first so one-time costs (kernel
    compile, codec table construction) stay out of the timed region.
    """
    from repro.inject.engine import BatchSpec, run_gpu_batch

    params = {"workload": "saxpy", "compile_scheme": "swap-ecc",
              "scale": 1.0, "occurrence_max": 60,
              "trial_batch": trial_batch}
    run_gpu_batch(params, None,
                  BatchSpec(index=0, size=min(256, samples), seed=seed))
    start = time.perf_counter()
    payload = run_gpu_batch(params, None,
                            BatchSpec(index=0, size=samples, seed=seed))
    seconds = time.perf_counter() - start
    return {
        "workload": params["workload"],
        "compile_scheme": params["compile_scheme"],
        "scale": params["scale"],
        "occurrence_max": params["occurrence_max"],
        "samples": samples,
        "trial_batch": trial_batch,
        "trials": payload["trials"],
        "seconds": seconds,
        "trials_per_s": samples / seconds if seconds else 0.0,
    }


def run_sim(smoke: bool = False, output: str = "BENCH_sim.json",
            seed: int = 3) -> Dict:
    """Run the simulator benchmark and write the JSON report."""
    trials = 192 if smoke else 1024
    scalar_trials = 16 if smoke else 48
    trial_batch = 96 if smoke else 512
    samples = 2048 if smoke else 16384
    campaign_batch = 1024 if smoke else 8192

    report = {
        "schema": SIM_SCHEMA,
        "generated": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "config": {"smoke": smoke, "trials": trials,
                   "scalar_trials": scalar_trials,
                   "trial_batch": trial_batch,
                   "campaign_samples": samples,
                   "campaign_trial_batch": campaign_batch, "seed": seed},
        "workloads": bench_sim_workloads(SIM_WORKLOADS, trials,
                                         scalar_trials, trial_batch, seed),
        "campaign": bench_sim_campaign(samples, campaign_batch, seed),
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def run(smoke: bool = False, output: str = "BENCH_codec.json",
        seed: int = 0) -> Dict:
    """Run every benchmark and write the JSON report to ``output``."""
    import numpy as np

    rng = np.random.default_rng(seed)
    words = 4096 if smoke else 65536
    batches = 256 if smoke else 2048
    repeats = 2 if smoke else 3
    samples = 120 if smoke else 600
    sites = 40 if smoke else 150

    report = {
        "schema": SCHEMA,
        "generated": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "config": {"smoke": smoke, "words": words, "warp_batches": batches,
                   "repeats": repeats, "campaign_samples": samples,
                   "campaign_sites": sites, "seed": seed},
        "codes": bench_codes(words, repeats, rng),
        "warp_read": bench_warp_read(batches, repeats, rng),
        "campaign": bench_campaign(samples, sites),
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def summarize_sim(report: Dict) -> str:
    """Human-readable digest of one simulator report."""
    lines = [f"simulator benchmark ({report['generated']}, "
             f"smoke={report['config']['smoke']})"]
    lines.append(f"{'workload':<12} {'scalar t/s':>12} {'batched t/s':>12} "
                 f"{'speedup':>9}")
    for name in SIM_WORKLOADS:
        row = report["workloads"][name]
        lines.append(f"{name:<12} {row['scalar_trials_per_s']:>12.0f} "
                     f"{row['batched_trials_per_s']:>12.0f} "
                     f"{row['speedup']:>8.1f}x")
    campaign = report["campaign"]
    lines.append(
        f"campaign ({campaign['workload']}, {campaign['compile_scheme']}, "
        f"batch {campaign['trial_batch']}): {campaign['samples']} trials "
        f"in {campaign['seconds']:.2f}s "
        f"({campaign['trials_per_s']:.0f} trials/s)")
    return "\n".join(lines)


def summarize(report: Dict) -> str:
    """Human-readable digest of one report (codec or simulator)."""
    if report.get("schema") == SIM_SCHEMA:
        return summarize_sim(report)
    lines = [f"codec benchmark ({report['generated']}, "
             f"smoke={report['config']['smoke']})"]
    lines.append(f"{'code':<14} {'scalar dec/s':>14} {'vector dec/s':>14} "
                 f"{'speedup':>9}")
    for name, row in sorted(report["codes"].items()):
        lines.append(f"{name:<14} {row['scalar_decode_ops_per_s']:>14.0f} "
                     f"{row['vector_decode_ops_per_s']:>14.0f} "
                     f"{row['decode_speedup']:>8.1f}x")
    warp = report["warp_read"]
    lines.append(
        f"warp read ({warp['scheme']}, {warp['registers_per_read']} regs x "
        f"{warp['lanes']} lanes/call): {warp['scalar_reads_per_s']:.0f} -> "
        f"{warp['vector_reads_per_s']:.0f} reads/s "
        f"({warp['speedup']:.1f}x; single-register "
        f"{warp['single_register']['speedup']:.1f}x)")
    campaign = report["campaign"]
    lines.append(
        f"campaign ({campaign['unit']}, {campaign['scheme']}): "
        f"{campaign['trials']} trials in {campaign['seconds']:.2f}s "
        f"({campaign['trials_per_s']:.0f} trials/s)")
    return "\n".join(lines)


def compare(old_path: str, new_path: str) -> str:
    """Delta of two same-schema benchmark reports (new relative to old)."""
    with open(old_path, encoding="utf-8") as handle:
        old = json.load(handle)
    with open(new_path, encoding="utf-8") as handle:
        new = json.load(handle)
    if old.get("schema") != new.get("schema"):
        raise SystemExit(f"schema mismatch: {old.get('schema')} vs "
                         f"{new.get('schema')}")
    lines = [f"comparing {new_path} against {old_path}"]
    if new.get("schema") == SIM_SCHEMA:
        for name in sorted(set(old["workloads"]) & set(new["workloads"])):
            before = old["workloads"][name]["batched_trials_per_s"]
            after = new["workloads"][name]["batched_trials_per_s"]
            lines.append(f"{name:<14} batched       {after / before:>6.2f}x "
                         f"of prior run")
        before = old["campaign"]["trials_per_s"]
        after = new["campaign"]["trials_per_s"]
        lines.append(f"campaign       trials/s      {after / before:>6.2f}x "
                     f"of prior run")
        return "\n".join(lines)
    for name in sorted(set(old["codes"]) & set(new["codes"])):
        before = old["codes"][name]["vector_decode_ops_per_s"]
        after = new["codes"][name]["vector_decode_ops_per_s"]
        lines.append(f"{name:<14} vector decode {after / before:>6.2f}x "
                     f"of prior run")
    before = old["warp_read"]["vector_reads_per_s"]
    after = new["warp_read"]["vector_reads_per_s"]
    lines.append(f"warp read      vector        {after / before:>6.2f}x "
                 f"of prior run")
    before = old["campaign"]["trials_per_s"]
    after = new["campaign"]["trials_per_s"]
    lines.append(f"campaign       trials/s      {after / before:>6.2f}x "
                 f"of prior run")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workloads")
    parser.add_argument("--sim", action="store_true",
                        help="run the simulator benchmark instead of "
                             "the codec benchmark")
    parser.add_argument("--output", default=None,
                        help="where to write the JSON report "
                             "(default BENCH_codec.json, or BENCH_sim.json "
                             "with --sim; '' to skip writing)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two existing reports and exit")
    arguments = parser.parse_args(argv)
    if arguments.compare:
        print(compare(*arguments.compare))
        return 0
    if arguments.sim:
        output = arguments.output
        if output is None:
            output = "BENCH_sim.json"
        seed = 3 if arguments.seed is None else arguments.seed
        report = run_sim(smoke=arguments.smoke, output=output, seed=seed)
    else:
        output = arguments.output
        if output is None:
            output = "BENCH_codec.json"
        seed = 0 if arguments.seed is None else arguments.seed
        report = run(smoke=arguments.smoke, output=output, seed=seed)
    arguments.output = output
    print(summarize(report))
    if arguments.output:
        print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
