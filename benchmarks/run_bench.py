#!/usr/bin/env python
"""Codec throughput benchmark driver — emits ``BENCH_codec.json``.

Measures the scalar Python ECC codec against the vectorized batch layer
(:mod:`repro.ecc.vectorized`) on three axes:

* per-code encode/decode ops/s over a large word batch;
* warp-wide register reads (32 lanes per call) through
  ``SwapScheme.read_many`` versus 32 scalar ``read`` calls — the GPU
  simulator's hot path;
* end-to-end gate-campaign trials/s through the injection engine's
  batched classification.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/run_bench.py [--smoke] \
        [--output BENCH_codec.json]

``--smoke`` shrinks every workload for CI; the JSON schema is documented
in EXPERIMENTS.md ("Codec benchmark harness").  Compare two runs with::

    python benchmarks/run_bench.py --compare old.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from datetime import datetime, timezone
from typing import Callable, Dict

SCHEMA = "swapcodes-bench-codec/1"


def _best_seconds(func: Callable[[], None], repeats: int) -> float:
    """Wall-clock seconds of the fastest of ``repeats`` runs of ``func``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_codes(words: int, repeats: int, rng) -> Dict[str, Dict[str, float]]:
    """Scalar vs. vectorized encode/decode ops/s for each swept code."""
    import numpy as np
    from repro.ecc import HammingSec, HsiaoSecDed, ParityCode, ResidueCode, \
        TedCode

    codes = {
        "secded-39-32": HsiaoSecDed(),
        "sec-38-32": HammingSec(),
        "ted-39-32": TedCode(),
        "mod7": ResidueCode(7),
        "parity-32": ParityCode(),
    }
    data = rng.integers(0, 2**32, size=words, dtype=np.uint64)
    results: Dict[str, Dict[str, float]] = {}
    for name, code in codes.items():
        check = code.encode_many(data)
        # Corrupt a third of the words with single-bit data errors so the
        # decoder exercises every verdict, not just the clean fast path.
        bad = data.copy()
        struck = rng.integers(0, 3, size=words) == 0
        bad[struck] ^= np.uint64(1) << rng.integers(
            0, code.data_bits, size=int(struck.sum()), dtype=np.uint64)

        bad_list = [int(value) for value in bad]
        check_list = [int(value) for value in check]
        scalar_decode = _best_seconds(
            lambda: [code.decode(d, c)
                     for d, c in zip(bad_list, check_list)], repeats)
        vector_decode = _best_seconds(
            lambda: code.decode_many(bad, check), repeats)
        scalar_encode = _best_seconds(
            lambda: [code.encode(d) for d in bad_list], repeats)
        vector_encode = _best_seconds(
            lambda: code.encode_many(bad), repeats)
        results[name] = {
            "scalar_decode_ops_per_s": words / scalar_decode,
            "vector_decode_ops_per_s": words / vector_decode,
            "decode_speedup": scalar_decode / vector_decode,
            "scalar_encode_ops_per_s": words / scalar_encode,
            "vector_encode_ops_per_s": words / vector_encode,
            "encode_speedup": scalar_encode / vector_encode,
        }
    return results


def bench_warp_read(batches: int, repeats: int, rng) -> Dict[str, float]:
    """Warp-wide register-read decode: scalar loop vs. ``read_many``.

    Mirrors the simulator's read-port granularity: ``WarpState`` gathers
    every tainted lane of every source register of an instruction —
    up to 3 registers x 32 lanes — into ONE ``read_many`` call (see
    ``repro.gpu.warp._check_tainted_read``).  The scalar baseline is the
    pre-batching behaviour: one ``scheme.read`` per lane.  A
    single-register (32-lane) breakdown is reported alongside.
    """
    import numpy as np
    from repro.ecc import SecDedDpSwap

    scheme = SecDedDpSwap()
    lanes = 32
    registers = 3  # a 3-operand instruction (e.g. fused multiply-add)
    span = lanes * registers
    values = rng.integers(0, 2**32, size=batches * span, dtype=np.uint64)
    words = [scheme.write_pair(int(value)) for value in values]
    # Strike one lane per warp-read so each batch carries a real error.
    for index in range(0, len(words), span):
        words[index] = words[index].with_data_error(
            1 << int(rng.integers(0, 32)))
    data = np.array([word.data for word in words], dtype=np.uint64)
    check = np.array([word.check for word in words], dtype=np.uint64)
    dp = np.array([word.dp for word in words], dtype=np.uint64)

    def scalar_pass():
        for word in words:
            scheme.read(word)

    def warp_pass(width):
        def run():
            for start in range(0, len(words), width):
                end = start + width
                scheme.read_many(data[start:end], check[start:end],
                                 dp[start:end])
        return run

    scalar = _best_seconds(scalar_pass, repeats)
    vector = _best_seconds(warp_pass(span), repeats)
    single = _best_seconds(warp_pass(lanes), repeats)
    reads = batches * span
    return {
        "scheme": scheme.name,
        "lanes": lanes,
        "registers_per_read": registers,
        "words_per_call": span,
        "batches": batches,
        "scalar_reads_per_s": reads / scalar,
        "vector_reads_per_s": reads / vector,
        "speedup": scalar / vector,
        "single_register": {
            "words_per_call": lanes,
            "vector_reads_per_s": reads / single,
            "speedup": scalar / single,
        },
    }


def bench_campaign(samples: int, sites: int) -> Dict[str, float]:
    """Gate-campaign trials/s through the engine's batched classification."""
    from repro.inject.engine import BatchSpec, run_gate_batch

    params = {"unit": "fxp-add-32", "site_count": sites,
              "scheme": "secded-dp"}
    batch = BatchSpec(index=0, size=samples, seed=3)
    start = time.perf_counter()
    payload = run_gate_batch(params, None, batch)
    seconds = time.perf_counter() - start
    return {
        "unit": params["unit"],
        "scheme": params["scheme"],
        "samples": samples,
        "sites": sites,
        "trials": payload["trials"],
        "seconds": seconds,
        "trials_per_s": payload["trials"] / seconds if seconds else 0.0,
    }


def run(smoke: bool = False, output: str = "BENCH_codec.json",
        seed: int = 0) -> Dict:
    """Run every benchmark and write the JSON report to ``output``."""
    import numpy as np

    rng = np.random.default_rng(seed)
    words = 4096 if smoke else 65536
    batches = 256 if smoke else 2048
    repeats = 2 if smoke else 3
    samples = 120 if smoke else 600
    sites = 40 if smoke else 150

    report = {
        "schema": SCHEMA,
        "generated": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "config": {"smoke": smoke, "words": words, "warp_batches": batches,
                   "repeats": repeats, "campaign_samples": samples,
                   "campaign_sites": sites, "seed": seed},
        "codes": bench_codes(words, repeats, rng),
        "warp_read": bench_warp_read(batches, repeats, rng),
        "campaign": bench_campaign(samples, sites),
    }
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def summarize(report: Dict) -> str:
    """Human-readable digest of one report."""
    lines = [f"codec benchmark ({report['generated']}, "
             f"smoke={report['config']['smoke']})"]
    lines.append(f"{'code':<14} {'scalar dec/s':>14} {'vector dec/s':>14} "
                 f"{'speedup':>9}")
    for name, row in sorted(report["codes"].items()):
        lines.append(f"{name:<14} {row['scalar_decode_ops_per_s']:>14.0f} "
                     f"{row['vector_decode_ops_per_s']:>14.0f} "
                     f"{row['decode_speedup']:>8.1f}x")
    warp = report["warp_read"]
    lines.append(
        f"warp read ({warp['scheme']}, {warp['registers_per_read']} regs x "
        f"{warp['lanes']} lanes/call): {warp['scalar_reads_per_s']:.0f} -> "
        f"{warp['vector_reads_per_s']:.0f} reads/s "
        f"({warp['speedup']:.1f}x; single-register "
        f"{warp['single_register']['speedup']:.1f}x)")
    campaign = report["campaign"]
    lines.append(
        f"campaign ({campaign['unit']}, {campaign['scheme']}): "
        f"{campaign['trials']} trials in {campaign['seconds']:.2f}s "
        f"({campaign['trials_per_s']:.0f} trials/s)")
    return "\n".join(lines)


def compare(old_path: str, new_path: str) -> str:
    """Delta of two BENCH_codec.json reports (new relative to old)."""
    with open(old_path, encoding="utf-8") as handle:
        old = json.load(handle)
    with open(new_path, encoding="utf-8") as handle:
        new = json.load(handle)
    lines = [f"comparing {new_path} against {old_path}"]
    for name in sorted(set(old["codes"]) & set(new["codes"])):
        before = old["codes"][name]["vector_decode_ops_per_s"]
        after = new["codes"][name]["vector_decode_ops_per_s"]
        lines.append(f"{name:<14} vector decode {after / before:>6.2f}x "
                     f"of prior run")
    before = old["warp_read"]["vector_reads_per_s"]
    after = new["warp_read"]["vector_reads_per_s"]
    lines.append(f"warp read      vector        {after / before:>6.2f}x "
                 f"of prior run")
    before = old["campaign"]["trials_per_s"]
    after = new["campaign"]["trials_per_s"]
    lines.append(f"campaign       trials/s      {after / before:>6.2f}x "
                 f"of prior run")
    return "\n".join(lines)


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workloads")
    parser.add_argument("--output", default="BENCH_codec.json",
                        help="where to write the JSON report "
                             "('' to skip writing)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two existing reports and exit")
    arguments = parser.parse_args(argv)
    if arguments.compare:
        print(compare(*arguments.compare))
        return 0
    report = run(smoke=arguments.smoke, output=arguments.output,
                 seed=arguments.seed)
    print(summarize(report))
    if arguments.output:
        print(f"wrote {arguments.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
