"""Figure 16: projected Swap-Predict with future check-bit predictors."""

from repro.experiments import FIG16_SCHEMES, render_slowdown_table, \
    run_performance_study
from repro.workloads import ALL_ORDER


def test_fig16_future_predictors(once):
    study = once(run_performance_study, FIG16_SCHEMES, ALL_ORDER, 0.5, 0)
    print()
    print(render_slowdown_table(study, "Figure 16: future predictors"))
    assert study.all_verified()
    # Progressively wider predictor sets monotonically help (on average).
    mad = study.mean_slowdown("pre-mad")
    fxp = study.mean_slowdown("pre-fxp")
    fp_addsub = study.mean_slowdown("pre-fp-addsub")
    fp_mad = study.mean_slowdown("pre-fp-mad")
    assert fp_mad <= fp_addsub + 0.01
    assert fp_addsub <= fxp + 0.01
    assert fxp <= mad + 0.01
    # Paper: floating-point MAD prediction brings the mean to ~5% and
    # rescues the fp64-bound worst case.
    assert fp_mad < 0.10
    lavamd = study.slowdowns("pre-fp-mad").get("lavamd", 1.0)
    assert lavamd < study.slowdowns("pre-mad")["lavamd"]
