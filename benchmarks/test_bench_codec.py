"""Codec throughput: batched ECC decode vs. the scalar Python path.

Drives ``benchmarks/run_bench.py`` (the ``BENCH_codec.json`` harness) at
smoke scale and asserts the tentpole acceptance bar: warp-wide register
reads through ``read_many`` must beat a 32-lane scalar ``read`` loop by
at least 10x, and every swept code's vectorized decode must beat its
scalar loop.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import run_bench  # noqa: E402


def test_codec_throughput(once, tmp_path):
    output = tmp_path / "BENCH_codec.json"
    report = once(run_bench.run, smoke=True, output=str(output))
    print()
    print(run_bench.summarize(report))

    assert report["schema"] == run_bench.SCHEMA
    written = json.loads(output.read_text())
    assert written["schema"] == run_bench.SCHEMA

    # Acceptance bar: vectorized warp-wide decode >=10x the scalar loop.
    assert report["warp_read"]["speedup"] >= 10.0, report["warp_read"]

    for name, row in report["codes"].items():
        assert row["decode_speedup"] > 1.0, (name, row)
    assert report["campaign"]["trials"] > 0
    assert report["campaign"]["trials_per_s"] > 0
