"""Microbenchmarks of the core substrates (real pytest-benchmark timing)."""

import random

from repro.ecc import HsiaoSecDed, ResidueCode, SecDedDpSwap
from repro.gates import build_add_unit, build_mad_unit
from repro.gpu import Device, LaunchConfig, MemorySpace, assemble
from repro.inject import FaultInjector


def test_hsiao_encode_decode_throughput(benchmark):
    code = HsiaoSecDed()
    rng = random.Random(0)
    words = [(d := rng.getrandbits(32), code.encode(d)) for __ in range(256)]

    def run():
        for data, check in words:
            code.decode(data ^ 1, check)

    benchmark(run)


def test_swap_scheme_read_throughput(benchmark):
    scheme = SecDedDpSwap()
    rng = random.Random(1)
    pairs = [scheme.write_pair(rng.getrandbits(32)).with_data_error(
        1 << rng.randrange(32)) for __ in range(256)]
    benchmark(lambda: [scheme.read(word) for word in pairs])


def test_gate_simulation_throughput(benchmark):
    unit = build_mad_unit(32)
    rng = random.Random(2)
    samples = {
        "a": [rng.getrandbits(32) for __ in range(512)],
        "b": [rng.getrandbits(32) for __ in range(512)],
        "c": [rng.getrandbits(64) for __ in range(512)],
    }
    packed = unit.pack_inputs(samples)
    benchmark(unit.evaluate, packed)


def test_fault_injection_throughput(benchmark):
    unit = build_add_unit(32)
    injector = FaultInjector(unit)
    rng = random.Random(3)
    samples = {
        "a": [rng.getrandbits(32) for __ in range(256)],
        "b": [rng.getrandbits(32) for __ in range(256)],
    }
    benchmark.pedantic(injector.run, args=(samples,),
                       kwargs={"site_count": 100}, rounds=3, iterations=1)


def test_gpu_simulator_throughput(benchmark):
    kernel = assemble("spin", """
        S2R R0, SR_TID
        MOV R1, 0
    loop:
        IMAD R2, R1, R0, R2
        IADD R1, R1, 1
        ISETP.LT P0, R1, 64
    @P0 BRA loop
        STG [R0], R2
        EXIT
    """)

    def run():
        memory = MemorySpace(4096)
        return Device().launch(kernel, LaunchConfig(4, 128), memory)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.issued > 0
