"""Figure 14: power and energy overheads for SNAP and matrixMul."""

from repro.experiments import render_figure14, run_power_study


def test_fig14_power_energy(once):
    study = once(run_power_study, 0.5)
    print()
    print(render_figure14(study))
    for workload in study.grid:
        for scheme in ("swdup", "swap-ecc", "pre-mad"):
            if study.grid[workload][scheme].rejected:
                continue
            # Power moves modestly (paper: worst case +15%)...
            assert abs(study.power_overhead(workload, scheme)) < 0.25
            # ...so energy overhead tracks the runtime overhead.
            energy = study.energy_overhead(workload, scheme)
            runtime = study.runtime_overhead(workload, scheme)
            assert abs(energy - runtime) < 0.30 + 0.25 * abs(runtime)
    # SNAP: duplication's energy cost shrinks dramatically with Swap-ECC
    # (paper: >2x energy for SW-Dup vs 11% worst-case for Swap-ECC).
    assert study.energy_overhead("snap", "swap-ecc") < \
        study.energy_overhead("snap", "swdup")
